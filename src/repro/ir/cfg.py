"""CFG utilities: predecessor maps, traversal orders, edge splitting."""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, Phi


def predecessor_map(func: Function) -> dict[BasicBlock, list[BasicBlock]]:
    preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reverse_postorder(func: Function) -> list[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable blocks last)."""
    seen: set[BasicBlock] = set()
    postorder: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(block)
        while stack:
            current, succs = stack[-1]
            advanced = False
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    if func.blocks:
        visit(func.entry)
    order = list(reversed(postorder))
    order.extend(b for b in func.blocks if b not in seen)
    return order


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks unreachable from the entry; returns how many."""
    seen: set[BasicBlock] = {func.entry}
    work = [func.entry]
    while work:
        block = work.pop()
        for succ in block.successors():
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    dead = [b for b in func.blocks if b not in seen]
    for block in dead:
        for succ in block.successors():
            for phi in succ.phis:
                if block in phi.incoming_blocks:
                    phi.remove_incoming(block)
        for instr in list(block.instructions):
            instr.users.clear()
    for block in dead:
        func.remove_block(block)
    return len(dead)


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the edge ``pred -> succ`` and return it.

    Phi nodes in ``succ`` are retargeted to the new block.  Used to give
    protected-branch successors a unique predecessor so the CFI condition
    merge is unambiguous.
    """
    func = pred.parent
    assert func is not None and succ.parent is func
    mid = func.add_block(f"{pred.name}.{succ.name}", after=pred)
    mid.append(Br(succ))
    term = pred.terminator
    assert term is not None
    term.replace_successor(succ, mid)
    for phi in succ.phis:
        phi.replace_incoming_block(pred, mid)
    return mid


def split_critical_edges(func: Function) -> int:
    """Split every edge whose source has >1 succs and target >1 preds."""
    preds = predecessor_map(func)
    count = 0
    for block in list(func.blocks):
        succs = block.successors()
        if len(succs) <= 1:
            continue
        for succ in list(dict.fromkeys(succs)):
            if len(preds[succ]) > 1:
                split_edge(block, succ)
                count += 1
    return count
