"""IR structural verifier.

Catches the pass-pipeline bugs that otherwise surface three stages later as
weird simulator behaviour: missing/multiple terminators, phi/predecessor
mismatches, uses that are not dominated by their definitions, and type
errors the constructors cannot see.
"""

from __future__ import annotations

from repro.ir.cfg import predecessor_map
from repro.ir.dominance import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Undef, Value


class VerificationError(AssertionError):
    """The IR violates a structural invariant."""


def verify_module(module: Module) -> None:
    for func in module.functions.values():
        if func.blocks:
            verify_function(func)


def verify_function(func: Function) -> None:
    _check_blocks(func)
    _check_phis(func)
    _check_dominance(func)


def _fail(func: Function, message: str) -> None:
    raise VerificationError(f"{func.name}: {message}")


def _check_blocks(func: Function) -> None:
    if not func.blocks:
        _fail(func, "function has no blocks")
    seen_names: set[str] = set()
    for block in func.blocks:
        if block.name in seen_names:
            _fail(func, f"duplicate block name {block.name}")
        seen_names.add(block.name)
        if block.parent is not func:
            _fail(func, f"block {block.name} has wrong parent")
        if not block.instructions:
            _fail(func, f"block {block.name} is empty")
        for i, instr in enumerate(block.instructions):
            if instr.parent is not block:
                _fail(func, f"instr in {block.name} has wrong parent")
            is_last = i == len(block.instructions) - 1
            if instr.is_terminator and not is_last:
                _fail(func, f"terminator mid-block in {block.name}")
            if is_last and not instr.is_terminator:
                _fail(func, f"block {block.name} lacks a terminator")
        for succ in block.successors():
            if succ.parent is not func:
                _fail(func, f"{block.name} branches to foreign block")


def _check_phis(func: Function) -> None:
    preds = predecessor_map(func)
    for block in func.blocks:
        expected = preds[block]
        past_phis = False
        for instr in block.instructions:
            if not isinstance(instr, Phi):
                past_phis = True
                continue
            if past_phis:
                _fail(func, f"phi after non-phi in {block.name}")
            incoming = instr.incoming_blocks
            if len(incoming) != len(set(id(b) for b in incoming)):
                _fail(func, f"phi in {block.name} has duplicate incoming blocks")
            if set(id(b) for b in incoming) != set(id(b) for b in expected):
                got = sorted(b.name for b in incoming)
                want = sorted(b.name for b in expected)
                _fail(func, f"phi in {block.name}: incoming {got} != preds {want}")
            for value in instr.operands:
                if value.type != instr.type and not isinstance(value, Undef):
                    _fail(func, f"phi in {block.name} mixes types")


def _check_dominance(func: Function) -> None:
    dom = DominatorTree(func)
    reachable = set(dom.order)
    positions: dict[Instruction, tuple[BasicBlock, int]] = {}
    for block in func.blocks:
        for i, instr in enumerate(block.instructions):
            positions[instr] = (block, i)

    def defined_ok(use_block: BasicBlock, use_index: int, value: Value) -> bool:
        if isinstance(value, (Constant, Argument, Undef)):
            return True
        if not isinstance(value, Instruction):
            return True  # globals, functions
        if value not in positions:
            return False
        def_block, def_index = positions[value]
        if def_block is use_block:
            return def_index < use_index
        return dom.strictly_dominates(def_block, use_block) or not (
            def_block in reachable and use_block in reachable
        )

    for block in func.blocks:
        if block not in reachable:
            continue
        for i, instr in enumerate(block.instructions):
            if isinstance(instr, Phi):
                for value, pred in instr.incomings:
                    if isinstance(value, Instruction):
                        if pred not in reachable:
                            continue
                        if value not in positions:
                            _fail(func, f"phi uses erased value in {block.name}")
                        def_block, _ = positions[value]
                        if not dom.dominates(def_block, pred):
                            _fail(
                                func,
                                f"phi incoming {value.display} does not dominate "
                                f"edge {pred.name} -> {block.name}",
                            )
                continue
            for value in instr.operands:
                if not defined_ok(block, i, value):
                    _fail(
                        func,
                        f"use of {value.display} in {block.name} "
                        "not dominated by its definition",
                    )
