"""Modules and global variables."""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.types import FunctionType, PTR
from repro.ir.values import Value


class GlobalVariable(Value):
    """A statically allocated byte region with optional initializer.

    ``initializer`` is raw bytes; word-typed data is little-endian, matching
    the target.  Globals evaluate to their address (a pointer value).
    """

    def __init__(self, name: str, size: int, initializer: Optional[bytes] = None):
        super().__init__(PTR, name)
        if initializer is not None and len(initializer) > size:
            raise ValueError(f"initializer for {name} exceeds size {size}")
        self.size = size
        self.initializer = initializer or b""

    @classmethod
    def from_words(cls, name: str, words: list[int]) -> "GlobalVariable":
        data = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
        return cls(name, len(data), data)

    @property
    def display(self) -> str:
        return f"@{self.name}"


class Module:
    """Top-level container of functions and globals."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}

    def add_function(
        self,
        name: str,
        function_type: FunctionType,
        param_names: Optional[list[str]] = None,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function {name}")
        func = Function(name, function_type, self, param_names)
        self.functions[name] = func
        return func

    def add_global(self, glob: GlobalVariable) -> GlobalVariable:
        if glob.name in self.globals:
            raise ValueError(f"duplicate global {glob.name}")
        self.globals[glob.name] = glob
        return glob

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Module {self.name}: {list(self.functions)}>"
