"""IR value hierarchy with use-list maintenance.

Every operand edge is tracked: when instruction ``I`` uses value ``V``,
``I in V.users``.  Passes rely on :meth:`Value.replace_all_uses_with` to
rewrite the program safely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.ir.types import Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction


class Value:
    """Base of everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.users: set["Instruction"] = set()

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to ``other`` (RAUW)."""
        if other is self:
            return
        for user in list(self.users):
            user.replace_operand(self, other)

    @property
    def display(self) -> str:
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.display}:{self.type}>"


class Constant(Value):
    """An integer constant.  Stored unsigned within the type's width."""

    def __init__(self, type_: Type, value: int):
        super().__init__(type_)
        self.value = value & type_.mask if type_.bits else value

    @property
    def display(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Undef(Value):
    """An undefined value (used transiently by SSA construction)."""

    @property
    def display(self) -> str:
        return "undef"


class Argument(Value):
    """A formal function parameter."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name)
        self.index = index


def const_iter(values: Iterable[Value]):
    """Yield only the :class:`Constant` operands of an iterable."""
    for v in values:
        if isinstance(v, Constant):
            yield v
