"""Textual IR form, for tests, debugging and golden files."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    CfiMergeIR,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Switch,
    Trap,
    Trunc,
    ZExt,
)
from repro.ir.module import Module
from repro.ir.values import Value


class _Namer:
    """Assigns stable %N names to anonymous values."""

    def __init__(self) -> None:
        self.names: dict[Value, str] = {}
        self.counter = 0

    def name(self, value: Value) -> str:
        from repro.ir.values import Argument, Constant, Undef
        from repro.ir.module import GlobalVariable

        if isinstance(value, Constant):
            return str(value.value)
        if isinstance(value, Undef):
            return "undef"
        if isinstance(value, GlobalVariable):
            return f"@{value.name}"
        if isinstance(value, Argument):
            return f"%{value.name}"
        if value not in self.names:
            if value.name:
                self.names[value] = f"%{value.name}"
            else:
                self.names[value] = f"%t{self.counter}"
                self.counter += 1
        return self.names[value]


def _format_instr(instr: Instruction, namer: _Namer) -> str:
    n = namer.name
    if isinstance(instr, BinaryOp):
        return f"{n(instr)} = {instr.opcode} {instr.type} {n(instr.lhs)}, {n(instr.rhs)}"
    if isinstance(instr, ICmp):
        return (
            f"{n(instr)} = icmp {instr.predicate} {instr.lhs.type} "
            f"{n(instr.lhs)}, {n(instr.rhs)}"
        )
    if isinstance(instr, Select):
        return (
            f"{n(instr)} = select {n(instr.condition)}, {instr.type} "
            f"{n(instr.true_value)}, {n(instr.false_value)}"
        )
    if isinstance(instr, Alloca):
        return f"{n(instr)} = alloca {instr.size}"
    if isinstance(instr, Load):
        return f"{n(instr)} = load {instr.type}, {n(instr.pointer)}"
    if isinstance(instr, Store):
        return f"store {instr.value.type} {n(instr.value)}, {n(instr.pointer)}"
    if isinstance(instr, PtrAdd):
        return f"{n(instr)} = ptradd {n(instr.pointer)}, {n(instr.offset)}"
    if isinstance(instr, ZExt):
        return f"{n(instr)} = zext {instr.value.type} {n(instr.value)} to {instr.type}"
    if isinstance(instr, Trunc):
        return f"{n(instr)} = trunc {instr.value.type} {n(instr.value)} to {instr.type}"
    if isinstance(instr, Call):
        args = ", ".join(n(a) for a in instr.args)
        prefix = f"{n(instr)} = " if instr.type.bits else ""
        return f"{prefix}call {instr.type} @{instr.callee.name}({args})"
    if isinstance(instr, Trap):
        return f"trap {instr.code}"
    if isinstance(instr, CfiMergeIR):
        return f"cfi.merge {n(instr.value)}, expected {instr.expected}"
    if isinstance(instr, Ret):
        return f"ret {n(instr.value)}" if instr.value is not None else "ret void"
    if isinstance(instr, Br):
        return f"br label %{instr.target.name}"
    if isinstance(instr, CondBr):
        tag = " !protected" if instr.protected else ""
        return (
            f"br {n(instr.condition)}, label %{instr.then_block.name}, "
            f"label %{instr.else_block.name}{tag}"
        )
    if isinstance(instr, Switch):
        cases = ", ".join(f"{c.value} -> %{b.name}" for c, b in instr.cases)
        return f"switch {n(instr.value)}, default %{instr.default.name} [{cases}]"
    if isinstance(instr, Phi):
        inc = ", ".join(f"[{n(v)}, %{b.name}]" for v, b in instr.incomings)
        return f"{n(instr)} = phi {instr.type} {inc}"
    return f"{instr.opcode} <unknown>"  # pragma: no cover


def print_function(func: Function) -> str:
    namer = _Namer()
    params = ", ".join(f"{a.type} %{a.name}" for a in func.arguments)
    attrs = " ".join(sorted(func.attributes))
    header = f"define {func.return_type} @{func.name}({params})"
    if attrs:
        header += f" {attrs}"
    lines = [header + " {"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {_format_instr(instr, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = []
    for glob in module.globals.values():
        parts.append(f"@{glob.name} = global [{glob.size} x i8]")
    for func in module.functions.values():
        parts.append(print_function(func))
    return "\n\n".join(parts)
