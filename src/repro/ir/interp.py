"""Reference IR interpreter.

Executes IR directly with a byte-addressable memory model that mirrors the
target's (little-endian, 32-bit pointers).  Every compiled program in the
test-suite is also run through this interpreter; divergence points at a back
end bug.  It is also how the *unprotected* semantics of a program are
defined when the fault campaigns compare outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    CfiMergeIR,
    CondBr,
    ICmp,
    Load,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Switch,
    Trap,
    Trunc,
    ZExt,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Undef, Value

WORD_MASK = 0xFFFFFFFF


class InterpError(RuntimeError):
    """Runtime error during IR interpretation (bad memory, div by zero...)."""


class TrapError(RuntimeError):
    """A ``trap`` instruction executed (detected fault)."""

    def __init__(self, code: int):
        super().__init__(f"trap {code}")
        self.code = code


@dataclass
class InterpResult:
    value: Optional[int]
    steps: int
    memory: "Memory"


class Memory:
    """Flat little-endian memory with bump-allocated globals and stack."""

    GLOBAL_BASE = 0x0001_0000
    STACK_TOP = 0x0010_0000

    def __init__(self, size: int = 0x20_0000):
        self.data = bytearray(size)
        self.global_addrs: dict[str, int] = {}
        self._global_bump = self.GLOBAL_BASE
        self.sp = self.STACK_TOP

    def place_global(self, name: str, size: int, initializer: bytes) -> int:
        addr = self._global_bump
        aligned = (size + 3) & ~3
        self._global_bump += aligned
        self.data[addr : addr + len(initializer)] = initializer
        self.global_addrs[name] = addr
        return addr

    def alloca(self, size: int) -> int:
        aligned = (size + 3) & ~3
        self.sp -= aligned
        if self.sp < self.STACK_TOP - 0x8_0000:
            raise InterpError("interpreter stack overflow")
        return self.sp

    def load(self, addr: int, size: int) -> int:
        if not 0 <= addr <= len(self.data) - size:
            raise InterpError(f"load out of bounds: {addr:#x}")
        return int.from_bytes(self.data[addr : addr + size], "little")

    def store(self, addr: int, value: int, size: int) -> None:
        if not 0 <= addr <= len(self.data) - size:
            raise InterpError(f"store out of bounds: {addr:#x}")
        self.data[addr : addr + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"
        )

    def read_bytes(self, addr: int, size: int) -> bytes:
        return bytes(self.data[addr : addr + size])

    def write_bytes(self, addr: int, payload: bytes) -> None:
        self.data[addr : addr + len(payload)] = payload


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >> 31 else value


def _binary_op(opcode: str, a: int, b: int, bits: int) -> int:
    mask = (1 << bits) - 1
    a &= mask
    b &= mask
    if opcode == "add":
        return (a + b) & mask
    if opcode == "sub":
        return (a - b) & mask
    if opcode == "mul":
        return (a * b) & mask
    if opcode == "udiv":
        if b == 0:
            raise InterpError("division by zero")
        return (a // b) & mask
    if opcode == "urem":
        if b == 0:
            raise InterpError("remainder by zero")
        return (a % b) & mask
    if opcode == "sdiv":
        if b == 0:
            raise InterpError("division by zero")
        sa, sb = _signed(a), _signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return q & mask
    if opcode == "srem":
        if b == 0:
            raise InterpError("remainder by zero")
        sa, sb = _signed(a), _signed(b)
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return r & mask
    if opcode == "and":
        return a & b
    if opcode == "or":
        return a | b
    if opcode == "xor":
        return a ^ b
    if opcode == "shl":
        return (a << (b & 31)) & mask
    if opcode == "lshr":
        return (a >> (b & 31)) & mask
    if opcode == "ashr":
        return (_signed(a) >> (b & 31)) & mask
    raise InterpError(f"unknown opcode {opcode}")


def _icmp(predicate: str, a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    table = {
        "eq": a == b,
        "ne": a != b,
        "ult": a < b,
        "ule": a <= b,
        "ugt": a > b,
        "uge": a >= b,
        "slt": sa < sb,
        "sle": sa <= sb,
        "sgt": sa > sb,
        "sge": sa >= sb,
    }
    return int(table[predicate])


@dataclass
class _Frame:
    function: Function
    values: dict[Value, int] = field(default_factory=dict)
    stack_mark: int = 0


class Interpreter:
    """Executes IR functions within one module."""

    def __init__(self, module: Module, max_steps: int = 50_000_000):
        self.module = module
        self.memory = Memory()
        self.max_steps = max_steps
        self.steps = 0
        for glob in module.globals.values():
            self.memory.place_global(glob.name, glob.size, glob.initializer)

    def run(self, function_name: str, args: list[int]) -> InterpResult:
        func = self.module.get_function(function_name)
        value = self._call(func, [a & WORD_MASK for a in args], depth=0)
        return InterpResult(value, self.steps, self.memory)

    def _value(self, frame: _Frame, v: Value) -> int:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, Undef):
            return 0
        from repro.ir.module import GlobalVariable

        if isinstance(v, GlobalVariable):
            return self.memory.global_addrs[v.name]
        return frame.values[v]

    def _call(self, func: Function, args: list[int], depth: int) -> Optional[int]:
        if depth > 200:
            raise InterpError("call depth exceeded")
        frame = _Frame(func, stack_mark=self.memory.sp)
        for formal, actual in zip(func.arguments, args):
            frame.values[formal] = actual & formal.type.mask
        block = func.entry
        prev_block: Optional[BasicBlock] = None
        try:
            while True:
                next_block, ret = self._run_block(frame, block, prev_block, depth)
                if next_block is None:
                    return ret
                prev_block, block = block, next_block
        finally:
            self.memory.sp = frame.stack_mark

    def _run_block(
        self,
        frame: _Frame,
        block: BasicBlock,
        prev_block: Optional[BasicBlock],
        depth: int,
    ) -> tuple[Optional[BasicBlock], Optional[int]]:
        # Phis are evaluated in parallel against the incoming edge.
        phis = block.phis
        if phis:
            assert prev_block is not None, "phi in entry block"
            new_values = {
                phi: self._value(frame, phi.incoming_for(prev_block)) for phi in phis
            }
            frame.values.update(new_values)

        for instr in block.instructions[len(phis) :]:
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpError("step budget exhausted")
            if isinstance(instr, BinaryOp):
                frame.values[instr] = _binary_op(
                    instr.opcode,
                    self._value(frame, instr.lhs),
                    self._value(frame, instr.rhs),
                    instr.type.bits,
                )
            elif isinstance(instr, ICmp):
                frame.values[instr] = _icmp(
                    instr.predicate,
                    self._value(frame, instr.lhs),
                    self._value(frame, instr.rhs),
                )
            elif isinstance(instr, Select):
                cond = self._value(frame, instr.condition)
                chosen = instr.true_value if cond else instr.false_value
                frame.values[instr] = self._value(frame, chosen)
            elif isinstance(instr, Alloca):
                frame.values[instr] = self.memory.alloca(instr.size)
            elif isinstance(instr, Load):
                addr = self._value(frame, instr.pointer)
                frame.values[instr] = self.memory.load(addr, instr.type.size_bytes)
            elif isinstance(instr, Store):
                addr = self._value(frame, instr.pointer)
                self.memory.store(
                    addr,
                    self._value(frame, instr.value),
                    instr.value.type.size_bytes,
                )
            elif isinstance(instr, PtrAdd):
                frame.values[instr] = (
                    self._value(frame, instr.pointer) + self._value(frame, instr.offset)
                ) & WORD_MASK
            elif isinstance(instr, ZExt):
                frame.values[instr] = self._value(frame, instr.value)
            elif isinstance(instr, Trunc):
                frame.values[instr] = (
                    self._value(frame, instr.value) & instr.type.mask
                )
            elif isinstance(instr, Call):
                result = self._call(
                    instr.callee,
                    [self._value(frame, a) for a in instr.args],
                    depth + 1,
                )
                if instr.type.bits:
                    assert result is not None
                    frame.values[instr] = result & instr.type.mask
            elif isinstance(instr, Trap):
                raise TrapError(instr.code)
            elif isinstance(instr, CfiMergeIR):
                # Models CFI detection: a mismatching merge value would
                # desynchronise the state and trip the next check.
                if self._value(frame, instr.value) != instr.expected:
                    raise TrapError(3)
            elif isinstance(instr, Ret):
                value = (
                    self._value(frame, instr.value) if instr.value is not None else None
                )
                return None, value
            elif isinstance(instr, Br):
                return instr.target, None
            elif isinstance(instr, CondBr):
                cond = self._value(frame, instr.condition)
                return (instr.then_block if cond else instr.else_block), None
            elif isinstance(instr, Switch):
                value = self._value(frame, instr.value)
                for const, target in instr.cases:
                    if const.value == value:
                        return target, None
                return instr.default, None
            else:  # pragma: no cover - defensive
                raise InterpError(f"cannot interpret {instr.opcode}")
        raise InterpError(f"block {block.name} fell through")
