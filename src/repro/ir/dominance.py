"""Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy).

Used by SSA construction (mem2reg) and by the verifier's def-dominates-use
check.
"""

from __future__ import annotations

from repro.ir.cfg import predecessor_map, reverse_postorder
from repro.ir.function import BasicBlock, Function


class DominatorTree:
    """Immediate dominators + dominance frontiers for one function."""

    def __init__(self, func: Function):
        self.function = func
        self.order = reverse_postorder(func)
        reachable = self._reachable()
        self.order = [b for b in self.order if b in reachable]
        self._index = {b: i for i, b in enumerate(self.order)}
        self.preds = predecessor_map(func)
        self.idom: dict[BasicBlock, BasicBlock] = {}
        self._compute_idoms()
        self.children: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.order}
        for block, dom in self.idom.items():
            if block is not dom:
                self.children[dom].append(block)
        self.frontiers = self._compute_frontiers()

    def _reachable(self) -> set[BasicBlock]:
        seen = {self.function.entry}
        work = [self.function.entry]
        while work:
            for succ in work.pop().successors():
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def _compute_idoms(self) -> None:
        entry = self.function.entry
        self.idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.order:
                if block is entry:
                    continue
                candidates = [p for p in self.preds[block] if p in self.idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = self._intersect(p, new_idom)
                if self.idom.get(block) is not new_idom:
                    self.idom[block] = new_idom
                    changed = True

    def _intersect(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while a is not b:
            while self._index[a] > self._index[b]:
                a = self.idom[a]
            while self._index[b] > self._index[a]:
                b = self.idom[b]
        return a

    def _compute_frontiers(self) -> dict[BasicBlock, set[BasicBlock]]:
        frontiers: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in self.order}
        for block in self.order:
            preds = [p for p in self.preds[block] if p in self.idom]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom[runner]
        return frontiers

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        runner = b
        while True:
            if runner is a:
                return True
            parent = self.idom.get(runner)
            if parent is None or parent is runner:
                return runner is a
            runner = parent

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)
