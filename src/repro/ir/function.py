"""Basic blocks and functions."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable, Optional

from repro.ir.instructions import Instruction, Phi
from repro.ir.types import FunctionType, Type
from repro.ir.values import Argument

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Module


class BasicBlock:
    """A straight-line sequence of instructions ending in one terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: list[Instruction] = []

    # -- instruction management ----------------------------------------
    def append(self, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.parent = self
        self.instructions.insert(index, instr)
        return instr

    def insert_before_terminator(self, instr: Instruction) -> Instruction:
        index = len(self.instructions)
        if self.instructions and self.instructions[-1].is_terminator:
            index -= 1
        return self.insert(index, instr)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def phis(self) -> list[Phi]:
        return list(itertools.takewhile(
            lambda i: isinstance(i, Phi), self.instructions
        ))

    @property
    def non_phi_instructions(self) -> list[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    # -- CFG -------------------------------------------------------------
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term else []

    def predecessors(self) -> list["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} instrs)>"


class Function:
    """A function: arguments, blocks, and attributes.

    The attribute set mirrors the paper's front-end annotation: functions
    marked ``protect_branches`` get the AN Coder treatment.
    """

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        module: Optional["Module"] = None,
        param_names: Optional[list[str]] = None,
    ):
        self.name = name
        self.function_type = function_type
        self.module = module
        self.blocks: list[BasicBlock] = []
        self.attributes: set[str] = set()
        names = param_names or [f"arg{i}" for i in range(len(function_type.params))]
        self.arguments = [
            Argument(t, n, i)
            for i, (t, n) in enumerate(zip(function_type.params, names))
        ]
        self._name_counter = itertools.count()

    @property
    def return_type(self) -> Type:
        return self.function_type.ret

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def is_protected(self) -> bool:
        return "protect_branches" in self.attributes

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self.unique_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        for instr in list(block.instructions):
            instr.drop_operands()
            instr.users.clear()
            instr.parent = None
        block.instructions.clear()
        self.blocks.remove(block)
        block.parent = None

    def unique_name(self, base: str) -> str:
        existing = {b.name for b in self.blocks}
        if base not in existing:
            return base
        while True:
            candidate = f"{base}.{next(self._name_counter)}"
            if candidate not in existing:
                return candidate

    def instructions(self) -> Iterable[Instruction]:
        for block in self.blocks:
            yield from list(block.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"
