"""IR type system: fixed-width integers, an opaque 32-bit pointer, void."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """A first-class IR type.  Instances are interned module-wide constants."""

    name: str
    bits: int

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def is_integer(self) -> bool:
        return self.name.startswith("i") and self.name != "iptr"

    @property
    def is_pointer(self) -> bool:
        return self.name == "ptr"

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __str__(self) -> str:
        return self.name


VOID = Type("void", 0)
I1 = Type("i1", 1)
I8 = Type("i8", 8)
I16 = Type("i16", 16)
I32 = Type("i32", 32)
#: Pointers are opaque and 32 bits wide (the target's address size).
PTR = Type("ptr", 32)

INT_TYPES = {1: I1, 8: I8, 16: I16, 32: I32}


def int_type(bits: int) -> Type:
    try:
        return INT_TYPES[bits]
    except KeyError:
        raise ValueError(f"unsupported integer width {bits}") from None


@dataclass(frozen=True)
class FunctionType:
    """Signature of a function: return type plus parameter types."""

    ret: Type
    params: tuple[Type, ...]

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"
