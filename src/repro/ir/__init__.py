"""A small SSA intermediate representation (docs/architecture.md: Middle end).

Deliberately LLVM-shaped: modules hold globals and functions, functions hold
basic blocks of instructions in SSA form (after :class:`~repro.passes.mem2reg`
promotion), values keep use-lists so passes can rewrite the program.  The
paper's middle-end passes (Figure 3) all operate on this IR.
"""

from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    CondBr,
    ICmp,
    Instruction,
    Load,
    Phi,
    PtrAdd,
    Ret,
    Select,
    Store,
    Switch,
    Trap,
    Trunc,
    ZExt,
)
from repro.ir.module import GlobalVariable, Module
from repro.ir.printer import print_function, print_module
from repro.ir.types import FunctionType, Type, I1, I8, I16, I32, PTR, VOID
from repro.ir.values import Argument, Constant, Undef, Value
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca",
    "Argument",
    "BasicBlock",
    "BinaryOp",
    "Br",
    "Call",
    "CondBr",
    "Constant",
    "Function",
    "FunctionType",
    "GlobalVariable",
    "ICmp",
    "IRBuilder",
    "Instruction",
    "I1",
    "I8",
    "I16",
    "I32",
    "Load",
    "Module",
    "PTR",
    "Phi",
    "PtrAdd",
    "Ret",
    "Select",
    "Store",
    "Switch",
    "Trap",
    "Trunc",
    "Type",
    "Undef",
    "VOID",
    "Value",
    "VerificationError",
    "ZExt",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
