"""IR instruction set.

Closely modelled on the LLVM subset the paper's transformations touch:
integer arithmetic, comparisons, select/switch (which get lowered before the
AN Coder), memory access, calls and control flow.  ``CondBr`` carries an
optional :class:`ProtectedBranchInfo` once the AN Coder has rewritten its
condition — the back end and CFI instrumentation key off it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.symbols import Predicate
from repro.ir.types import I1, I32, PTR, Type, VOID
from repro.ir.values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import BasicBlock, Function


#: IR-level integer comparison predicates (LLVM naming).
ICMP_PREDICATES = (
    "eq",
    "ne",
    "ult",
    "ule",
    "ugt",
    "uge",
    "slt",
    "sle",
    "sgt",
    "sge",
)

#: Map of unsigned/equality icmp predicates onto the paper's predicates.
ICMP_TO_PAPER = {
    "eq": Predicate.EQ,
    "ne": Predicate.NE,
    "ult": Predicate.LT,
    "ule": Predicate.LE,
    "ugt": Predicate.GT,
    "uge": Predicate.GE,
}

BINARY_OPCODES = (
    "add",
    "sub",
    "mul",
    "udiv",
    "sdiv",
    "urem",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
)


@dataclass
class ProtectedBranchInfo:
    """Metadata the AN Coder attaches to a protected conditional branch.

    ``condition`` is the encoded condition symbol value (an i32); the branch
    compares it against ``true_value`` and the CFI instrumentation merges it
    into the state in both successors, expecting ``true_value`` on the taken
    edge and ``false_value`` otherwise (Figure 2 of the paper).
    """

    predicate: Predicate
    true_value: int
    false_value: int


class Instruction(Value):
    """Base instruction: a value with operands and a parent block."""

    opcode: str = "?"

    def __init__(self, type_: Type, operands: list[Value], name: str = ""):
        super().__init__(type_, name)
        self.operands: list[Value] = []
        self.parent: Optional["BasicBlock"] = None
        for op in operands:
            self._add_operand(op)

    # -- operand/use management ---------------------------------------
    def _add_operand(self, value: Value) -> None:
        self.operands.append(value)
        value.users.add(self)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        self.operands[index] = value
        if old not in self.operands:
            old.users.discard(self)
        value.users.add(self)

    def replace_operand(self, old: Value, new: Value) -> None:
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                new.users.add(self)
        old.users.discard(self)

    def drop_operands(self) -> None:
        for op in set(self.operands):
            op.users.discard(self)
        self.operands.clear()

    def erase_from_parent(self) -> None:
        """Remove from the block and drop operand uses.  Users must be gone."""
        assert not self.users, f"erasing {self!r} which still has users"
        self.drop_operands()
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None

    # -- classification -------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Switch, Ret, Trap))

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent else None

    def successors(self) -> list["BasicBlock"]:
        return []


class BinaryOp(Instruction):
    """Two-operand integer arithmetic/logic."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class ICmp(Instruction):
    """Integer comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"operand type mismatch: {lhs.type} vs {rhs.type}")
        super().__init__(I1, [lhs, rhs], name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    @property
    def paper_predicate(self) -> Optional[Predicate]:
        """The paper predicate, or None for signed predicates."""
        return ICMP_TO_PAPER.get(self.predicate)


class Select(Instruction):
    """``select cond, a, b`` — lowered to control flow before the AN Coder."""

    opcode = "select"

    def __init__(self, cond: Value, true_value: Value, false_value: Value, name: str = ""):
        if true_value.type != false_value.type:
            raise TypeError("select arms must have matching types")
        super().__init__(true_value.type, [cond, true_value, false_value], name)

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class Alloca(Instruction):
    """Stack allocation of ``size`` bytes; yields a pointer."""

    opcode = "alloca"

    def __init__(self, size: int, name: str = "", element_type: Type = I32):
        super().__init__(PTR, [], name)
        self.size = size
        self.element_type = element_type

    @property
    def is_scalar_word(self) -> bool:
        """True when this is a single promotable 32-bit slot."""
        return self.size == 4 and self.element_type is I32


class Load(Instruction):
    opcode = "load"

    def __init__(self, type_: Type, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise TypeError("load requires a pointer operand")
        super().__init__(type_, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    opcode = "store"

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer:
            raise TypeError("store requires a pointer operand")
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class PtrAdd(Instruction):
    """Pointer plus byte offset (our minimalist GEP)."""

    opcode = "ptradd"

    def __init__(self, pointer: Value, offset: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise TypeError("ptradd requires a pointer operand")
        super().__init__(PTR, [pointer, offset], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def offset(self) -> Value:
        return self.operands[1]


class ZExt(Instruction):
    opcode = "zext"

    def __init__(self, value: Value, to_type: Type, name: str = ""):
        if value.type.bits >= to_type.bits:
            raise TypeError("zext must widen")
        super().__init__(to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class Trunc(Instruction):
    opcode = "trunc"

    def __init__(self, value: Value, to_type: Type, name: str = ""):
        if value.type.bits <= to_type.bits:
            raise TypeError("trunc must narrow")
        super().__init__(to_type, [value], name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class Call(Instruction):
    opcode = "call"

    def __init__(self, callee: "Function", args: list[Value], name: str = ""):
        expected = callee.function_type.params
        if len(args) != len(expected):
            raise TypeError(
                f"call to {callee.name}: expected {len(expected)} args, got {len(args)}"
            )
        for arg, want in zip(args, expected):
            if arg.type != want:
                raise TypeError(f"call to {callee.name}: arg type {arg.type} != {want}")
        super().__init__(callee.function_type.ret, list(args), name)
        self.callee = callee

    @property
    def args(self) -> list[Value]:
        return list(self.operands)


class Trap(Instruction):
    """Terminator signalling a detected fault (lowered to an MMIO report).

    ``code`` identifies the detection source (duplication comparison tree,
    explicit AN check, ...).
    """

    opcode = "trap"

    def __init__(self, code: int = 1):
        super().__init__(VOID, [])
        self.code = code


class CfiMergeIR(Instruction):
    """Merge ``value`` into the CFI state; statically expected ``expected``.

    Emitted by the AN Coder's optional operand residue checks (an extension
    hardening Algorithm 2's operand-fault window): the residue of a valid
    code word is 0, so merging it is a no-op, while a faulted operand
    desynchronises the CFI state.  The IR interpreter models detection by
    trapping when the value mismatches.
    """

    opcode = "cfimerge"

    def __init__(self, value: Value, expected: int = 0):
        super().__init__(VOID, [value])
        self.expected = expected

    @property
    def value(self) -> Value:
        return self.operands[0]


class Ret(Instruction):
    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Br(Instruction):
    opcode = "br"

    def __init__(self, target: "BasicBlock"):
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> list["BasicBlock"]:
        return [self.target]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class CondBr(Instruction):
    opcode = "condbr"

    def __init__(self, cond: Value, then_block: "BasicBlock", else_block: "BasicBlock"):
        super().__init__(VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block
        #: Set by the AN Coder when this branch is protected.
        self.protected: Optional[ProtectedBranchInfo] = None

    @property
    def condition(self) -> Value:
        return self.operands[0]

    @property
    def condition_symbol(self) -> Optional[Value]:
        """The encoded condition value merged into the CFI state (if any)."""
        return self.operands[1] if len(self.operands) > 1 else None

    def attach_condition_symbol(self, value: Value) -> None:
        assert len(self.operands) == 1, "condition symbol already attached"
        self._add_operand(value)

    def successors(self) -> list["BasicBlock"]:
        return [self.then_block, self.else_block]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new


class Switch(Instruction):
    opcode = "switch"

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: list[tuple[Constant, "BasicBlock"]],
    ):
        super().__init__(VOID, [value])
        self.default = default
        self.cases = list(cases)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def successors(self) -> list["BasicBlock"]:
        return [self.default] + [block for _, block in self.cases]

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]


class Phi(Instruction):
    """SSA phi node; incoming order mirrors ``parent.predecessors`` loosely."""

    opcode = "phi"

    def __init__(self, type_: Type, name: str = ""):
        super().__init__(type_, [], name)
        self.incoming_blocks: list["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._add_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incomings(self) -> list[tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incomings:
            if pred is block:
                return value
        raise KeyError(f"phi {self.display} has no incoming for {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                value = self.operands.pop(i)
                self.incoming_blocks.pop(i)
                if value not in self.operands:
                    value.users.discard(self)
                return
        raise KeyError(f"phi {self.display} has no incoming for {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming_blocks = [new if b is old else b for b in self.incoming_blocks]
