"""MiniC AST -> IR lowering (with light semantic checking)."""

from __future__ import annotations

from typing import Optional

from repro.ir import (
    Constant,
    FunctionType,
    GlobalVariable,
    I8,
    I32,
    IRBuilder,
    Module,
    PTR,
    Trap,
    VOID,
)
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Value
from repro.minic import ast


class SemanticError(ValueError):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}")
        self.line = line


_BINOP_IR = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "udiv",
    "%": "urem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "lshr",
}

_CMP_IR = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule", ">": "ugt", ">=": "uge"}


def _element_size(ctype: ast.CType) -> int:
    return 1 if ctype.base == "u8" else 4


def _ir_scalar_type(ctype: ast.CType):
    if ctype.pointer:
        return PTR
    if ctype.base == "u8":
        return I8
    if ctype.base == "void":
        return VOID
    return I32


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.entries: dict[str, tuple] = {}

    def define(self, name: str, entry: tuple, line: int) -> None:
        if name in self.entries:
            raise SemanticError(f"redefinition of {name}", line)
        self.entries[name] = entry

    def lookup(self, name: str):
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class Lowerer:
    """Lowers one parsed program into a fresh IR module."""

    def __init__(self, program: ast.Program, module_name: str = "minic"):
        self.program = program
        self.module = Module(module_name)
        self.globals_scope = _Scope()
        self._block_counter = 0

    # ------------------------------------------------------------------
    def run(self) -> Module:
        for decl in self.program.globals:
            self._lower_global(decl)
        # Declare all functions first so forward calls resolve.
        for fdecl in self.program.functions:
            if len(fdecl.params) > 4:
                raise SemanticError(
                    f"{fdecl.name}: more than 4 parameters unsupported", fdecl.line
                )
            ftype = FunctionType(
                _ir_scalar_type(fdecl.return_type),
                tuple(
                    PTR if p.type.pointer else I32  # u8 params promote to u32
                    for p in fdecl.params
                ),
            )
            func = self.module.add_function(
                fdecl.name, ftype, [p.name for p in fdecl.params]
            )
            if fdecl.protected:
                func.attributes.add("protect_branches")
            self.globals_scope.define(fdecl.name, ("function", func, fdecl), fdecl.line)
        for fdecl in self.program.functions:
            self._lower_function(fdecl)
        return self.module

    # ------------------------------------------------------------------
    def _lower_global(self, decl: ast.GlobalDecl) -> None:
        elem = _element_size(decl.type)
        if decl.type.pointer:
            raise SemanticError("global pointers unsupported", decl.line)
        count = decl.array_size if decl.array_size is not None else 1
        size = elem * count
        data = b""
        if decl.init_values is not None:
            if len(decl.init_values) > count:
                raise SemanticError(f"too many initializers for {decl.name}", decl.line)
            data = b"".join(
                (v & ((1 << (8 * elem)) - 1)).to_bytes(elem, "little")
                for v in decl.init_values
            )
        glob = GlobalVariable(decl.name, size, data)
        self.module.add_global(glob)
        self.globals_scope.define(decl.name, ("global", glob, decl), decl.line)

    # ------------------------------------------------------------------
    def _lower_function(self, fdecl: ast.FunctionDecl) -> None:
        func = self.module.get_function(fdecl.name)
        ctx = _FunctionContext(self, func, fdecl)
        ctx.lower()


class _FunctionContext:
    def __init__(self, owner: Lowerer, func: Function, decl: ast.FunctionDecl):
        self.owner = owner
        self.module = owner.module
        self.func = func
        self.decl = decl
        self.builder = IRBuilder()
        self.scope = _Scope(owner.globals_scope)
        self.loop_stack: list[tuple[BasicBlock, BasicBlock]] = []  # (continue, break)

    # -- helpers -----------------------------------------------------------
    def new_block(self, hint: str) -> BasicBlock:
        return self.func.add_block(hint)

    def ensure_open_block(self) -> None:
        """Statements after a terminator land in a fresh dead block."""
        if self.builder.block.terminator is not None:
            self.builder.position_at_end(self.new_block("dead"))

    def const(self, value: int) -> Constant:
        return Constant(I32, value & 0xFFFFFFFF)

    # -- entry -------------------------------------------------------------
    def lower(self) -> None:
        entry = self.func.add_block("entry")
        self.builder.position_at_end(entry)
        for param, arg in zip(self.decl.params, self.func.arguments):
            slot = self.builder.alloca(4, f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(param.name, ("local", slot, param.type, False), self.decl.line)
        self.lower_body(self.decl.body, self.scope)
        if self.builder.block.terminator is None:
            if self.func.return_type is VOID:
                self.builder.ret()
            else:
                self.builder.ret(self.const(0))
        remove_unreachable_blocks(self.func)

    def lower_body(self, statements: list, parent_scope: _Scope) -> None:
        scope = _Scope(parent_scope)
        old, self.scope = self.scope, scope
        for stmt in statements:
            self.ensure_open_block()
            self.lower_statement(stmt)
        self.scope = old

    # -- statements ---------------------------------------------------------
    def lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            if not self.loop_stack:
                raise SemanticError("break outside loop", stmt.line)
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise SemanticError("continue outside loop", stmt.line)
            self.builder.br(self.loop_stack[-1][0])
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def lower_decl(self, stmt: ast.DeclStmt) -> None:
        if stmt.array_size is not None:
            size = _element_size(stmt.type) * stmt.array_size
            slot = self.builder.alloca(size, stmt.name, _ir_scalar_type(stmt.type))
            self.scope.define(stmt.name, ("local", slot, stmt.type, True), stmt.line)
            return
        slot = self.builder.alloca(4, stmt.name)
        self.scope.define(stmt.name, ("local", slot, stmt.type, False), stmt.line)
        if stmt.init is not None:
            value, _ = self.lower_expr(stmt.init)
            self.builder.store(value, slot)

    def lower_assign(self, stmt: ast.AssignStmt) -> None:
        addr, elem_type, ctype = self.lower_lvalue(stmt.target)
        if stmt.op == "=":
            value, _ = self.lower_expr(stmt.value)
        else:
            current = self._load(addr, elem_type)
            rhs, _ = self.lower_expr(stmt.value)
            value = self.builder.binary(_BINOP_IR[stmt.op[:-1]], current, rhs)
        self._store(value, addr, elem_type)

    def lower_if(self, stmt: ast.IfStmt) -> None:
        then_block = self.new_block("if.then")
        else_block = self.new_block("if.else") if stmt.else_body else None
        join = self.new_block("if.end")
        self.lower_condition(stmt.cond, then_block, else_block or join)
        self.builder.position_at_end(then_block)
        self.lower_body(stmt.then_body, self.scope)
        if self.builder.block.terminator is None:
            self.builder.br(join)
        if else_block is not None:
            self.builder.position_at_end(else_block)
            self.lower_body(stmt.else_body, self.scope)
            if self.builder.block.terminator is None:
                self.builder.br(join)
        self.builder.position_at_end(join)

    def lower_while(self, stmt: ast.WhileStmt) -> None:
        header = self.new_block("while.cond")
        body = self.new_block("while.body")
        exit_ = self.new_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        self.lower_condition(stmt.cond, body, exit_)
        self.builder.position_at_end(body)
        self.loop_stack.append((header, exit_))
        self.lower_body(stmt.body, self.scope)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.builder.position_at_end(exit_)

    def lower_for(self, stmt: ast.ForStmt) -> None:
        scope = _Scope(self.scope)
        old, self.scope = self.scope, scope
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        header = self.new_block("for.cond")
        body = self.new_block("for.body")
        step_block = self.new_block("for.step")
        exit_ = self.new_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, exit_)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((step_block, exit_))
        self.lower_body(stmt.body, self.scope)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.lower_statement(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(exit_)
        self.scope = old

    def lower_return(self, stmt: ast.ReturnStmt) -> None:
        if stmt.value is None:
            if self.func.return_type is not VOID:
                raise SemanticError("missing return value", stmt.line)
            self.builder.ret()
            return
        value, _ = self.lower_expr(stmt.value)
        self.builder.ret(value)

    # -- lvalues -------------------------------------------------------------
    def lower_lvalue(self, expr: ast.Expr):
        """Returns (address_value, element_ir_type, ctype_of_element)."""
        if isinstance(expr, ast.NameExpr):
            entry = self.scope.lookup(expr.name)
            if entry is None:
                raise SemanticError(f"undefined name {expr.name}", expr.line)
            kind = entry[0]
            if kind == "local":
                _, slot, ctype, is_array = entry
                if is_array:
                    raise SemanticError("cannot assign to an array", expr.line)
                return slot, _lvalue_elem_type(ctype), ctype
            if kind == "global":
                _, glob, decl = entry
                if decl.array_size is not None:
                    raise SemanticError("cannot assign to an array", expr.line)
                return glob, _ir_scalar_type(decl.type), decl.type
            raise SemanticError(f"cannot assign to {expr.name}", expr.line)
        if isinstance(expr, ast.IndexExpr):
            base, base_ctype = self.lower_expr(expr.base)
            index, _ = self.lower_expr(expr.index)
            elem = _element_size(_pointee(base_ctype, expr.line))
            offset = (
                index
                if elem == 1
                else self.builder.mul(index, self.const(elem))
            )
            addr = self.builder.ptradd(base, offset)
            pointee = _pointee(base_ctype, expr.line)
            return addr, _ir_scalar_type(pointee), pointee
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            base, base_ctype = self.lower_expr(expr.operand)
            pointee = _pointee(base_ctype, expr.line)
            return base, _ir_scalar_type(pointee), pointee
        raise SemanticError("expression is not assignable", expr.line)

    def _load(self, addr: Value, elem_type) -> Value:
        if elem_type is I8:
            return self.builder.zext(self.builder.load(I8, addr), I32)
        return self.builder.load(elem_type, addr)

    def _store(self, value: Value, addr: Value, elem_type) -> None:
        if elem_type is I8:
            self.builder.store(self.builder.trunc(value, I8), addr)
        else:
            self.builder.store(value, addr)

    # -- conditions ---------------------------------------------------------
    def lower_condition(
        self, expr: ast.Expr, true_block: BasicBlock, false_block: BasicBlock
    ) -> None:
        if isinstance(expr, ast.BinaryExpr) and expr.op in _CMP_IR:
            lhs, _ = self.lower_expr(expr.lhs)
            rhs, _ = self.lower_expr(expr.rhs)
            cond = self.builder.icmp(_CMP_IR[expr.op], lhs, rhs)
            self.builder.condbr(cond, true_block, false_block)
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op == "&&":
            mid = self.new_block("and.rhs")
            self.lower_condition(expr.lhs, mid, false_block)
            self.builder.position_at_end(mid)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op == "||":
            mid = self.new_block("or.rhs")
            self.lower_condition(expr.lhs, true_block, mid)
            self.builder.position_at_end(mid)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            self.lower_condition(expr.operand, false_block, true_block)
            return
        value, _ = self.lower_expr(expr)
        cond = self.builder.icmp("ne", value, self.const(0))
        self.builder.condbr(cond, true_block, false_block)

    # -- expressions ---------------------------------------------------------
    def lower_expr(self, expr: ast.Expr):
        """Returns (ir_value, ctype)."""
        if isinstance(expr, ast.NumberExpr):
            return self.const(expr.value), ast.U32
        if isinstance(expr, ast.NameExpr):
            return self.lower_name(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self.lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self.lower_binary(expr)
        if isinstance(expr, ast.TernaryExpr):
            return self.lower_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self.lower_call(expr)
        if isinstance(expr, ast.IndexExpr):
            addr, elem_type, ctype = self.lower_lvalue(expr)
            return self._load(addr, elem_type), ctype
        if isinstance(expr, ast.AddressOfExpr):
            return self.lower_address_of(expr)
        raise SemanticError(f"cannot lower {type(expr).__name__}", expr.line)

    def lower_name(self, expr: ast.NameExpr):
        entry = self.scope.lookup(expr.name)
        if entry is None:
            raise SemanticError(f"undefined name {expr.name}", expr.line)
        kind = entry[0]
        if kind == "local":
            _, slot, ctype, is_array = entry
            if is_array:
                return slot, ast.CType(ctype.base, True)  # array decays
            if ctype.pointer:
                return self.builder.load(PTR, slot), ctype
            return self._load(slot, _lvalue_elem_type(ctype)), ctype
        if kind == "global":
            _, glob, decl = entry
            if decl.array_size is not None:
                return glob, ast.CType(decl.type.base, True)
            return self._load(glob, _ir_scalar_type(decl.type)), decl.type
        raise SemanticError(f"{expr.name} is not a value", expr.line)

    def lower_unary(self, expr: ast.UnaryExpr):
        if expr.op == "*":
            addr, elem_type, ctype = self.lower_lvalue(expr)
            return self._load(addr, elem_type), ctype
        value, ctype = self.lower_expr(expr.operand)
        if expr.op == "-":
            return self.builder.sub(self.const(0), value), ast.U32
        if expr.op == "~":
            return self.builder.xor(value, self.const(0xFFFFFFFF)), ast.U32
        if expr.op == "!":
            cond = self.builder.icmp("eq", value, self.const(0))
            return self.builder.zext(cond, I32), ast.U32
        raise SemanticError(f"unknown unary {expr.op}", expr.line)

    def lower_binary(self, expr: ast.BinaryExpr):
        if expr.op in _CMP_IR:
            lhs, _ = self.lower_expr(expr.lhs)
            rhs, _ = self.lower_expr(expr.rhs)
            cond = self.builder.icmp(_CMP_IR[expr.op], lhs, rhs)
            return self.builder.zext(cond, I32), ast.U32
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        lhs, lhs_type = self.lower_expr(expr.lhs)
        rhs, rhs_type = self.lower_expr(expr.rhs)
        if lhs_type.pointer and expr.op in ("+", "-"):
            elem = _element_size(ast.CType(lhs_type.base))
            scaled = (
                rhs if elem == 1 else self.builder.mul(rhs, self.const(elem))
            )
            if expr.op == "-":
                scaled = self.builder.sub(self.const(0), scaled)
            return self.builder.ptradd(lhs, scaled), lhs_type
        return self.builder.binary(_BINOP_IR[expr.op], lhs, rhs), ast.U32

    def lower_short_circuit(self, expr: ast.BinaryExpr):
        true_block = self.new_block("sc.true")
        false_block = self.new_block("sc.false")
        join = self.new_block("sc.end")
        self.lower_condition(expr, true_block, false_block)
        self.builder.position_at_end(true_block)
        self.builder.br(join)
        self.builder.position_at_end(false_block)
        self.builder.br(join)
        self.builder.position_at_end(join)
        phi = self.builder.phi(I32, "sc")
        phi.add_incoming(self.const(1), true_block)
        phi.add_incoming(self.const(0), false_block)
        return phi, ast.U32

    def lower_ternary(self, expr: ast.TernaryExpr):
        cond_value, _ = self.lower_expr(expr.cond)
        cond = self.builder.icmp("ne", cond_value, self.const(0))
        then_value, then_type = self.lower_expr(expr.then)
        else_value, _ = self.lower_expr(expr.els)
        return self.builder.select(cond, then_value, else_value), then_type

    def lower_call(self, expr: ast.CallExpr):
        if expr.callee == "__trap":
            code = expr.args[0].value if expr.args else 1
            self.builder._insert(Trap(code))
            # continuation lands in a dead block
            self.builder.position_at_end(self.new_block("after.trap"))
            return self.const(0), ast.U32
        entry = self.scope.lookup(expr.callee)
        if entry is None or entry[0] != "function":
            raise SemanticError(f"undefined function {expr.callee}", expr.line)
        _, func, fdecl = entry
        if len(expr.args) != len(fdecl.params):
            raise SemanticError(
                f"{expr.callee} expects {len(fdecl.params)} arguments", expr.line
            )
        args = [self.lower_expr(a)[0] for a in expr.args]
        result = self.builder.call(func, args)
        return result, fdecl.return_type

    def lower_address_of(self, expr: ast.AddressOfExpr):
        operand = expr.operand
        if isinstance(operand, ast.IndexExpr):
            addr, _, ctype = self.lower_lvalue(operand)
            return addr, ast.CType(ctype.base, True)
        if isinstance(operand, ast.NameExpr):
            entry = self.scope.lookup(operand.name)
            if entry is None:
                raise SemanticError(f"undefined name {operand.name}", expr.line)
            if entry[0] == "local":
                _, slot, ctype, _ = entry
                return slot, ast.CType(ctype.base, True)
            if entry[0] == "global":
                _, glob, decl = entry
                return glob, ast.CType(decl.type.base, True)
        raise SemanticError("cannot take address of expression", expr.line)


def _pointee(ctype: ast.CType, line: int) -> ast.CType:
    if not ctype.pointer:
        raise SemanticError(f"cannot index non-pointer {ctype}", line)
    return ast.CType(ctype.base, False)


def _lvalue_elem_type(ctype: ast.CType):
    if ctype.pointer:
        return PTR  # pointers are 32-bit words with pointer type
    return _ir_scalar_type(ctype)


def lower_program(program: ast.Program, module_name: str = "minic") -> Module:
    return Lowerer(program, module_name).run()
