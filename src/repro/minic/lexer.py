"""MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "u32",
    "u8",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "protect",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
]


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'keyword' | operator literal | 'eof'
    text: str
    line: int

    @property
    def value(self) -> int:
        assert self.kind == "number"
        return int(self.text, 0)


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i + 1
            if ch == "0" and j < n and source[j] in "xX":
                j += 1
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("number", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
