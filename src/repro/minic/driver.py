"""MiniC compilation driver: source text -> IR module -> compiled program."""

from __future__ import annotations

from typing import Optional

from repro.backend.driver import CompiledProgram, compile_ir
from repro.core.params import ProtectionParams
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.minic.lower import lower_program
from repro.minic.parser import parse
from repro.toolchain.config import CompileConfig, coerce_config


def parse_to_ir(source: str, module_name: str = "minic") -> Module:
    """Front end only: MiniC source -> verified IR module."""
    module = lower_program(parse(source), module_name)
    verify_module(module)
    return module


def compile_source(
    source: str,
    scheme: Optional[str] = None,
    params: Optional[ProtectionParams] = None,
    cfi: Optional[bool] = None,
    duplication_order: Optional[int] = None,
    hw_modulo: Optional[bool] = None,
    operand_checks: Optional[bool] = None,
    cfi_policy: Optional[str] = None,
    module_name: Optional[str] = None,
    *,
    config: Optional[CompileConfig] = None,
) -> CompiledProgram:
    """Compile MiniC source through the full Figure 3 pipeline.

    The configuration is one :class:`~repro.toolchain.config.CompileConfig`;
    the individual keyword arguments are a deprecated shim kept for older
    callers and produce byte-identical output.
    """
    config = coerce_config(
        config,
        {
            "scheme": scheme,
            "params": params,
            "cfi": cfi,
            "duplication_order": duplication_order,
            "hw_modulo": hw_modulo,
            "operand_checks": operand_checks,
            "cfi_policy": cfi_policy,
            "module_name": module_name,
        },
        "compile_source",
    )
    module = parse_to_ir(source, config.module_name)
    return compile_ir(module, config=config)
