"""MiniC compilation driver: source text -> IR module -> compiled program."""

from __future__ import annotations

from typing import Optional

from repro.backend.driver import CompiledProgram, compile_ir
from repro.core.params import ProtectionParams
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.minic.lower import lower_program
from repro.minic.parser import parse


def parse_to_ir(source: str, module_name: str = "minic") -> Module:
    """Front end only: MiniC source -> verified IR module."""
    module = lower_program(parse(source), module_name)
    verify_module(module)
    return module


def compile_source(
    source: str,
    scheme: str = "ancode",
    params: Optional[ProtectionParams] = None,
    cfi: bool = True,
    duplication_order: int = 6,
    hw_modulo: bool = False,
    operand_checks: bool = False,
    cfi_policy: str = "merge",
    module_name: str = "minic",
) -> CompiledProgram:
    """Compile MiniC source through the full Figure 3 pipeline."""
    module = parse_to_ir(source, module_name)
    return compile_ir(
        module,
        scheme=scheme,
        params=params,
        cfi=cfi,
        duplication_order=duplication_order,
        hw_modulo=hw_modulo,
        operand_checks=operand_checks,
        cfi_policy=cfi_policy,
    )
