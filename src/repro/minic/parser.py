"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Optional

from repro.minic import ast
from repro.minic.lexer import Token, tokenize

#: Binary operator precedence (larger binds tighter), C-like.
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (got {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check(self, kind: str) -> bool:
        return self.current.kind == kind

    def check_keyword(self, word: str) -> bool:
        return self.current.kind == "keyword" and self.current.text == word

    def accept(self, kind: str) -> Optional[Token]:
        if self.check(kind):
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if not self.check(kind):
            raise ParseError(f"expected {kind!r}", self.current)
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.check_keyword(word):
            raise ParseError(f"expected {word!r}", self.current)
        return self.advance()

    # -- top level ---------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self.check("eof"):
            protected = False
            if self.check_keyword("protect"):
                self.advance()
                protected = True
            ctype = self.parse_type()
            name = self.expect("ident").text
            if self.check("("):
                program.functions.append(self.parse_function(ctype, name, protected))
            else:
                if protected:
                    raise ParseError("protect applies to functions", self.current)
                program.globals.append(self.parse_global(ctype, name))
        return program

    def parse_type(self) -> ast.CType:
        token = self.current
        if token.kind == "keyword" and token.text in ("u32", "u8", "void"):
            self.advance()
            pointer = bool(self.accept("*"))
            return ast.CType(token.text, pointer)
        raise ParseError("expected a type", token)

    def parse_function(self, return_type, name, protected) -> ast.FunctionDecl:
        line = self.current.line
        self.expect("(")
        params: list[ast.Param] = []
        if not self.check(")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(ast.Param(ptype, pname))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FunctionDecl(name, return_type, params, body, protected, line)

    def parse_global(self, ctype, name) -> ast.GlobalDecl:
        line = self.current.line
        array_size = None
        init_values = None
        if self.accept("["):
            array_size = self.expect("number").value
            self.expect("]")
        if self.accept("="):
            if self.accept("{"):
                init_values = []
                if not self.check("}"):
                    while True:
                        init_values.append(self.parse_constant())
                        if not self.accept(","):
                            break
                self.expect("}")
            else:
                init_values = [self.parse_constant()]
        self.expect(";")
        return ast.GlobalDecl(ctype, name, array_size, init_values, line)

    def parse_constant(self) -> int:
        negative = bool(self.accept("-"))
        value = self.expect("number").value
        return (-value) & 0xFFFFFFFF if negative else value

    # -- statements ---------------------------------------------------------
    def parse_block(self) -> list:
        self.expect("{")
        body = []
        while not self.check("}"):
            body.append(self.parse_statement())
        self.expect("}")
        return body

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "keyword":
            if token.text in ("u32", "u8"):
                return self.parse_declaration()
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "for":
                return self.parse_for()
            if token.text == "return":
                self.advance()
                value = None if self.check(";") else self.parse_expression()
                self.expect(";")
                return ast.ReturnStmt(token.line, value)
            if token.text == "break":
                self.advance()
                self.expect(";")
                return ast.BreakStmt(token.line)
            if token.text == "continue":
                self.advance()
                self.expect(";")
                return ast.ContinueStmt(token.line)
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_declaration(self) -> ast.DeclStmt:
        line = self.current.line
        ctype = self.parse_type()
        name = self.expect("ident").text
        array_size = None
        init = None
        if self.accept("["):
            array_size = self.expect("number").value
            self.expect("]")
        elif self.accept("="):
            init = self.parse_expression()
        self.expect(";")
        return ast.DeclStmt(line, ctype, name, array_size, init)

    def parse_simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        line = self.current.line
        expr = self.parse_expression()
        if self.current.kind in ASSIGN_OPS:
            op = self.advance().kind
            value = self.parse_expression()
            return ast.AssignStmt(line, expr, op, value)
        return ast.ExprStmt(line, expr)

    def parse_if(self) -> ast.IfStmt:
        line = self.expect_keyword("if").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self.parse_block()
        else_body = []
        if self.check_keyword("else"):
            self.advance()
            if self.check_keyword("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.IfStmt(line, cond, then_body, else_body)

    def parse_while(self) -> ast.WhileStmt:
        line = self.expect_keyword("while").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        return ast.WhileStmt(line, cond, self.parse_block())

    def parse_for(self) -> ast.ForStmt:
        line = self.expect_keyword("for").line
        self.expect("(")
        init = None
        if not self.check(";"):
            if self.check("keyword") and self.current.text in ("u32", "u8"):
                init = self.parse_declaration()  # consumes its ';'
            else:
                init = self.parse_simple_statement()
                self.expect(";")
        else:
            self.expect(";")
        cond = None if self.check(";") else self.parse_expression()
        self.expect(";")
        step = None if self.check(")") else self.parse_simple_statement()
        self.expect(")")
        return ast.ForStmt(line, init, cond, step, self.parse_block())

    # -- expressions ---------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            els = self.parse_expression()
            return ast.TernaryExpr(cond.line, cond, then, els)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            op = self.current.kind
            prec = PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinaryExpr(lhs.line, op, lhs, rhs)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind in ("!", "~", "-"):
            self.advance()
            return ast.UnaryExpr(token.line, token.kind, self.parse_unary())
        if token.kind == "*":
            self.advance()
            return ast.UnaryExpr(token.line, "*", self.parse_unary())
        if token.kind == "&":
            self.advance()
            return ast.AddressOfExpr(token.line, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.IndexExpr(expr.line, expr, index)
            elif self.check("(") and isinstance(expr, ast.NameExpr):
                self.advance()
                args = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = ast.CallExpr(expr.line, expr.name, args)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberExpr(token.line, token.value)
        if token.kind == "ident":
            self.advance()
            return ast.NameExpr(token.line, token.text)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError("expected an expression", token)


def parse(source: str) -> ast.Program:
    return Parser(source).parse_program()
