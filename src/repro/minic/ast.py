"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# -- types -------------------------------------------------------------------
@dataclass(frozen=True)
class CType:
    base: str  # 'u32' | 'u8' | 'void'
    pointer: bool = False

    def __str__(self) -> str:
        return self.base + ("*" if self.pointer else "")


U32 = CType("u32")
U8 = CType("u8")
VOID = CType("void")


# -- expressions ---------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class NameExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class TernaryExpr(Expr):
    cond: Expr = None
    then: Expr = None
    els: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: list = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class AddressOfExpr(Expr):
    operand: Expr = None


# -- statements ---------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    type: CType = U32
    name: str = ""
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Expr = None  # NameExpr or IndexExpr or UnaryExpr('*')
    op: str = "="  # '=', '+=', ...
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then_body: list = field(default_factory=list)
    else_body: list = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: list = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: list = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- top level -------------------------------------------------------------
@dataclass
class Param:
    type: CType
    name: str


@dataclass
class FunctionDecl:
    name: str
    return_type: CType
    params: list[Param]
    body: list
    protected: bool = False
    line: int = 0


@dataclass
class GlobalDecl:
    type: CType
    name: str
    array_size: Optional[int] = None
    init_values: Optional[list[int]] = None
    line: int = 0


@dataclass
class Program:
    functions: list[FunctionDecl] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
