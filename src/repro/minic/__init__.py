"""MiniC front end (docs/architecture.md: Front end).

A small C subset sufficient for the paper's benchmarks (integer compare,
memcmp, the secure bootloader with SHA-256 and ECDSA): ``u32``/``u8``
scalars, arrays and pointers, functions with up to four parameters, the
usual statements and operators, and a ``protect`` function qualifier that
maps onto the paper's ``protect_branches`` attribute.
"""

from repro.minic.driver import compile_source, parse_to_ir
from repro.minic.lexer import LexError
from repro.minic.parser import ParseError
from repro.minic.lower import SemanticError

__all__ = [
    "LexError",
    "ParseError",
    "SemanticError",
    "compile_source",
    "parse_to_ir",
]
