"""Per-instruction signatures.

The signature is the CRC-32 of the instruction's canonical text — address
independent (so layout does not feed back into the instrumentation) but
sensitive to opcode, registers and immediates, which is what instruction-
granular CFI needs: executing a *different* instruction yields a different
state.
"""

from __future__ import annotations

import zlib

def signature(instr) -> int:
    # Instruction text is immutable once emitted; cache per object (the
    # monitor queries this for every retired instruction).
    sig = getattr(instr, "_sig_cache", None)
    if sig is None:
        sig = zlib.crc32(instr.text().encode()) & 0xFFFFFFFF
        instr._sig_cache = sig
    return sig
