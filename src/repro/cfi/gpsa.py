"""GPSA state arithmetic (shared by static propagation and the monitor)."""

from __future__ import annotations

import zlib

MASK = 0xFFFFFFFF


def rotl(value: int, amount: int = 1) -> int:
    value &= MASK
    return ((value << amount) | (value >> (32 - amount))) & MASK


def update(state: int, sig: int) -> int:
    """Advance the state by one retired instruction."""
    return rotl(state, 1) ^ (sig & MASK)


def merge(state: int, value: int) -> int:
    """Merge a runtime value stored to the CFI unit into the state."""
    return (state ^ value) & MASK


def entry_state(function_name: str) -> int:
    """Deterministic per-function entry state."""
    return zlib.crc32(f"fn:{function_name}".encode()) & MASK
