"""GPSA control-flow integrity (docs/architecture.md: Target).

A software-centred CFI scheme in the spirit of Werner et al. (CARDIS 2015),
the one the paper builds on: every retired instruction advances a state
``S = rotl(S, 1) XOR sig(instr)``; values stored to the CFI unit are merged
``S ^= value``; stored check values must equal ``S``.  The paper's branch
protection merges the *encoded condition symbol* into ``S`` in both branch
successors, with the statically expected symbol differing per successor —
that is the "linking" that removes the 1-bit single point of failure.
"""

from repro.cfi.gpsa import entry_state, merge, update
from repro.cfi.monitor import CfiMonitor
from repro.cfi.signatures import signature

__all__ = ["CfiMonitor", "entry_state", "merge", "signature", "update"]
