"""Runtime CFI monitor.

Attached to the CPU as a retire hook.  Mirrors the paper's CFI unit:

* every retired instruction advances the GPSA state;
* stores to ``CFI_MERGE`` fold the stored value into the state (this is how
  encoded condition symbols get linked in — Figure 2);
* stores to ``CFI_CHECK`` compare the stored (expected) value against the
  state and flag a violation on mismatch;
* calls push the caller state and switch to the callee's entry state;
  returns pop (an interprocedural shadow stack inside the monitor).
"""

from __future__ import annotations

from repro.cfi.gpsa import entry_state, merge
from repro.cfi.signatures import signature
from repro.isa import instructions as ins
from repro.isa.cpu import CPU, MAGIC_RETURN
from repro.isa.mmio import MMIO


class CfiMonitor:
    def __init__(self, cpu: CPU, entry_function: str):
        self.cpu = cpu
        self.image = cpu.image
        self.state = entry_state(entry_function)
        self.call_stack: list[int] = []
        self.violations = 0
        self.checks_passed = 0
        cpu.retire_hooks.append(self.on_retire)
        cpu.monitor = self  # included in CPU.snapshot()/restore()

    # ------------------------------------------------------------------
    def snapshot_state(self) -> tuple:
        """Monitor state for CPU checkpoints (shadow stack included)."""
        return (self.state, list(self.call_stack), self.violations, self.checks_passed)

    def restore_state(self, snap: tuple) -> None:
        self.state, call_stack, self.violations, self.checks_passed = snap
        self.call_stack = list(call_stack)

    # ------------------------------------------------------------------
    def on_retire(self, cpu: CPU, instr, cfi_events) -> None:
        # Runs once per retired instruction — the campaign engine's hottest
        # hook.  The state advance inlines gpsa.update/rotl (one shift-or
        # and an xor) and the instruction kind checks use exact class
        # identity instead of isinstance.
        state = self.state
        state = (((state << 1) | (state >> 31)) & 0xFFFFFFFF) ^ signature(instr)
        if cfi_events:
            for event in cfi_events:
                if event.addr == MMIO.CFI_MERGE:
                    state = merge(state, event.value)
                elif event.addr == MMIO.CFI_CHECK:
                    if event.value != state:
                        self.violations += 1
                        cpu.cfi_violation()
                    else:
                        self.checks_passed += 1
        cls = instr.__class__
        if cls is ins.Bl:
            callee = self.image.function_of(instr.target)
            self.call_stack.append(state)
            state = entry_state(callee) if callee is not None else state
        elif cls is ins.BxLr and self.call_stack:
            state = self.call_stack.pop()
        self.state = state
