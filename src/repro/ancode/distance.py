"""Hamming-distance metrics for AN-codes.

The quality measure the paper (following Hoffmann et al., HASE 2014) uses for
an encoding constant is the minimum Hamming distance between any two code
words.  Two notions appear in the literature:

* the *arithmetic-difference weight*: ``min_k HW(A*k mod 2^w)`` over all
  non-zero functional differences ``k`` — cheap to compute and the metric
  used to label ``A = 63877`` a "super A" with distance 6;
* the exact *pairwise XOR distance* ``min HW(A*x XOR A*y)``, which is not
  translation invariant and needs a pairwise sweep.

Both are provided; the pairwise sweep is chunked numpy and only practical for
small functional widths (it is used by the slow test suite and the E8
ablation bench).
"""

from __future__ import annotations

import numpy as np

_POPCOUNT_TABLE = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint8)


def hamming_weight(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Hamming distance between two words of equal (implied) width."""
    return hamming_weight(a ^ b)


def _popcount_u32(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount of a uint32 array."""
    as_bytes = words.astype(np.uint32).view(np.uint8)
    return _POPCOUNT_TABLE[as_bytes].reshape(words.shape + (4,)).sum(axis=-1)


def code_word_weights(A: int, word_bits: int, functional_bits: int) -> np.ndarray:
    """Hamming weights of all non-zero code words ``A*k mod 2^w``.

    ``k`` ranges over the unsigned functional range
    ``1 .. 2^functional_bits - 1`` — the code-word set proper.  This is the
    metric under which the paper (following Hoffmann et al.) quotes a
    minimum distance of 6 for ``A = 63877``.
    """
    if word_bits != 32:
        mask = (1 << word_bits) - 1
        return np.array(
            [hamming_weight((A * k) & mask) for k in range(1, 1 << functional_bits)],
            dtype=np.uint8,
        )
    k = np.arange(1, 1 << functional_bits, dtype=np.uint64)
    pos = (np.uint64(A) * k) & np.uint64(0xFFFFFFFF)
    return _popcount_u32(pos)


def signed_difference_weights(A: int, word_bits: int, functional_bits: int) -> np.ndarray:
    """Weights of signed differences ``±A*k mod 2^w`` (two's complement).

    The wrapped negatives can dip *below* the unsigned code-word minimum
    (for ``A = 63877`` the minimum drops from 6 to 5); this matters for
    faults injected on transient difference values and is reported by the
    E8 ablation.
    """
    pos = code_word_weights(A, word_bits, functional_bits)
    if word_bits != 32:
        mask = (1 << word_bits) - 1
        neg = np.array(
            [hamming_weight((-A * k) & mask) for k in range(1, 1 << functional_bits)],
            dtype=np.uint8,
        )
        return np.concatenate([pos, neg])
    k = np.arange(1, 1 << functional_bits, dtype=np.uint64)
    words = (np.uint64(A) * k) & np.uint64(0xFFFFFFFF)
    neg = (np.uint64(1 << 32) - words) & np.uint64(0xFFFFFFFF)
    return np.concatenate([pos, _popcount_u32(neg)])


def min_arithmetic_distance(A: int, word_bits: int = 32, functional_bits: int = 16) -> int:
    """Minimum weight of any non-zero code word (the paper's distance metric).

    "Minimum Hamming distance of six" for ``A = 63877`` over 16-bit
    functional values (Section IV-a).
    """
    return int(code_word_weights(A, word_bits, functional_bits).min())


def min_pairwise_distance(
    A: int,
    word_bits: int = 32,
    functional_bits: int = 8,
    chunk: int = 2048,
) -> int:
    """Exact minimum pairwise XOR Hamming distance between code words.

    Cost is quadratic in the number of code words — keep ``functional_bits``
    small (<= 12) unless you have time to spare.
    """
    mask = (1 << word_bits) - 1
    n = 1 << functional_bits
    words = (np.arange(n, dtype=np.uint64) * np.uint64(A)) & np.uint64(mask)
    words = words.astype(np.uint32)
    best = word_bits
    for start in range(0, n, chunk):
        block = words[start : start + chunk]
        # Only compare against strictly-later words to avoid the zero diagonal.
        for i, w in enumerate(block):
            rest = words[start + i + 1 :]
            if rest.size == 0:
                continue
            d = _popcount_u32(np.bitwise_xor(rest, w))
            m = int(d.min())
            if m < best:
                best = m
                if best == 1:
                    return best
    return best
