"""Core AN-code encode/decode/arithmetic.

All arithmetic happens in a fixed machine word (default 32 bit), i.e. modulo
``2**word_bits``, exactly as it would on the ARMv7-M target the paper uses.

Representation notes (these distinctions carry the whole paper):

* *Code words proper* are unsigned multiples ``A * n`` with
  ``0 <= n <= max_functional``; validity is the unsigned congruence
  ``code % A == 0``.
* *Differences* of code words are valid in the **signed** (two's complement)
  interpretation — AN-codes are closed under subtraction there (Equation 1)
  — but the **unsigned** congruence fails for negative differences, leaving
  the residue ``2^w mod A`` behind (Equation 5).  The encoded comparison
  (Section IV) is built entirely on this asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass


class ANCodeError(ValueError):
    """Raised when an operation would violate the AN-code invariants."""


@dataclass(frozen=True)
class ANCode:
    """An AN-code with encoding constant ``A`` inside a ``word_bits`` word.

    Parameters
    ----------
    A:
        The encoding constant.  All code words are multiples of ``A``.
    word_bits:
        Machine word width the encoded values live in.
    functional_bits:
        Width of the functional (unencoded) values.  The paper requires
        ``n < A`` to preserve error detection; with the default
        ``A = 63877`` the full 16-bit range is usable.
    """

    A: int = 63877
    word_bits: int = 32
    functional_bits: int = 16

    def __post_init__(self) -> None:
        if self.A <= 1:
            raise ANCodeError(f"encoding constant must be > 1, got {self.A}")
        if self.A % 2 == 0:
            raise ANCodeError("even encoding constants lose low-bit redundancy")
        if self.A.bit_length() + self.functional_bits > self.word_bits:
            raise ANCodeError(
                f"A={self.A} with {self.functional_bits} functional bits "
                f"overflows a {self.word_bits}-bit word"
            )

    @property
    def word_mask(self) -> int:
        return (1 << self.word_bits) - 1

    @property
    def max_functional(self) -> int:
        """Largest encodable unsigned functional value."""
        return (1 << self.functional_bits) - 1

    @property
    def max_signed_functional(self) -> int:
        """Largest magnitude representable in the signed interpretation.

        A signed code word must fit ``|A*n| < 2^(w-1)``; this is roughly half
        the unsigned range (33619 for the paper's parameters).
        """
        return min(self.max_functional, ((1 << (self.word_bits - 1)) - 1) // self.A)

    @property
    def residue_of_wrap(self) -> int:
        """``2**word_bits mod A`` — the residue that tags negative differences.

        This is the quantity the paper calls ``2^32 % A`` (Equation 5); for
        the default parameters it equals 5570.
        """
        return (1 << self.word_bits) % self.A

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, n: int) -> int:
        """Encode an unsigned functional value ``0 <= n <= max_functional``."""
        if not 0 <= n <= self.max_functional:
            raise ANCodeError(f"{n} outside functional range of {self}")
        return self.A * n

    def encode_signed(self, n: int) -> int:
        """Encode a signed functional value as a two's-complement word.

        Negative encodings are *transient* values (differences); they are
        valid under :meth:`is_valid_signed` but intentionally invalid under
        the unsigned congruence :meth:`is_valid`.
        """
        if abs(n) > self.max_signed_functional:
            raise ANCodeError(f"{n} outside signed functional range of {self}")
        return (self.A * n) & self.word_mask

    def decode(self, code: int) -> int:
        """Decode an unsigned code word, raising on faults."""
        if not self.is_valid(code):
            raise ANCodeError(f"invalid code word {code:#x} for A={self.A}")
        return (code & self.word_mask) // self.A

    def decode_signed(self, code: int) -> int:
        """Decode a word under the signed (two's complement) interpretation."""
        if not self.is_valid_signed(code):
            raise ANCodeError(f"invalid signed code word {code:#x} for A={self.A}")
        return self._signed(code) // self.A

    def is_valid(self, code: int) -> bool:
        """Unsigned AN congruence ``0 == code mod A`` — the hardware check."""
        return (code & self.word_mask) % self.A == 0

    def is_valid_signed(self, code: int) -> bool:
        """Signed-interpretation validity (differences of code words)."""
        return self._signed(code) % self.A == 0

    def residue(self, code: int) -> int:
        """Unsigned residue ``code % A`` — the raw check value hardware computes."""
        return (code & self.word_mask) % self.A

    def _signed(self, code: int) -> int:
        code &= self.word_mask
        if code >> (self.word_bits - 1):
            return code - (1 << self.word_bits)
        return code

    # ------------------------------------------------------------------
    # Arithmetic in the encoded domain (all mod 2**word_bits)
    # ------------------------------------------------------------------
    def add(self, xc: int, yc: int) -> int:
        """Encoded addition: AN-codes are closed under ``+`` (Equation 1)."""
        return (xc + yc) & self.word_mask

    def sub(self, xc: int, yc: int) -> int:
        """Encoded subtraction: closed in the signed representation."""
        return (xc - yc) & self.word_mask

    def neg(self, xc: int) -> int:
        return (-xc) & self.word_mask

    def add_const(self, xc: int, n: int) -> int:
        """Add an *unencoded* constant by encoding it at compile time."""
        return (xc + self.encode(n)) & self.word_mask

    def mul(self, xc: int, yc: int) -> int:
        """Encoded multiplication.

        ``xc * yc = A^2 * x * y``; the product needs one corrective exact
        division by ``A`` to return to the code (the "special correction
        value" the paper mentions).  The wide product is computed before
        truncation, as a UMULL+divide sequence would on the target.
        """
        wide = xc * yc
        if wide % self.A != 0:
            raise ANCodeError("product left the code (operand fault?)")
        return (wide // self.A) & self.word_mask

    def check(self, *codes: int) -> None:
        """Validate every word (unsigned), raising on the first invalid one."""
        for code in codes:
            if not self.is_valid(code):
                raise ANCodeError(f"invalid code word {code:#x} for A={self.A}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ANCode(A={self.A}, word_bits={self.word_bits}, "
            f"functional_bits={self.functional_bits})"
        )
