"""AN-code arithmetic encoding (docs/architecture.md: Middle end).

AN-codes represent a functional value ``n`` as the code word ``A * n``.
Every multiple of the encoding constant ``A`` is a valid code word; the
congruence ``code % A == 0`` validates a word.  The code is closed under
addition and subtraction, which is what the paper's encoded comparison
exploits (Section II-B and IV of the paper).
"""

from repro.ancode.codes import ANCode, ANCodeError
from repro.ancode.distance import (
    code_word_weights,
    hamming_distance,
    hamming_weight,
    min_arithmetic_distance,
    min_pairwise_distance,
    signed_difference_weights,
)
from repro.ancode.super_a import KNOWN_SUPER_AS, find_best_constants, rank_constants

__all__ = [
    "ANCode",
    "ANCodeError",
    "KNOWN_SUPER_AS",
    "code_word_weights",
    "find_best_constants",
    "hamming_distance",
    "hamming_weight",
    "min_arithmetic_distance",
    "min_pairwise_distance",
    "rank_constants",
    "signed_difference_weights",
]
