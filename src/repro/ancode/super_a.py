"""Search for good encoding constants ("super As", Hoffmann et al. 2014).

The paper picks ``A = 63877`` because it maximises the minimum Hamming
distance (6) for 16-bit functional values in a 32-bit word while leaving the
full 16-bit functional range usable.  Finding such constants is exhaustive
search; this module provides a vectorised ranking so the search is practical
for moderate candidate ranges, plus a table of known-good constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ancode.distance import min_arithmetic_distance

#: Known-good ("super") encoding constants per functional width, from the
#: AN-code literature, with their measured minimum code distance under our
#: metric.  Each maps functional_bits -> (A, min distance).
KNOWN_SUPER_AS: dict[int, tuple[int, int]] = {
    8: (58659, 6),
    16: (63877, 6),
}


@dataclass(frozen=True)
class ConstantQuality:
    """Ranking record for one candidate encoding constant."""

    A: int
    min_distance: int

    def __lt__(self, other: "ConstantQuality") -> bool:
        return (self.min_distance, self.A) < (other.min_distance, other.A)


def rank_constants(
    candidates: list[int],
    word_bits: int = 32,
    functional_bits: int = 16,
) -> list[ConstantQuality]:
    """Rank candidate constants by minimum arithmetic code distance (desc)."""
    ranked = []
    max_a_bits = word_bits - functional_bits
    for A in candidates:
        if A <= 1 or A % 2 == 0:
            continue
        if A.bit_length() > max_a_bits:
            continue
        ranked.append(
            ConstantQuality(A, min_arithmetic_distance(A, word_bits, functional_bits))
        )
    ranked.sort(key=lambda q: (-q.min_distance, q.A))
    return ranked


def find_best_constants(
    word_bits: int = 32,
    functional_bits: int = 16,
    lo: int | None = None,
    hi: int | None = None,
    top: int = 5,
) -> list[ConstantQuality]:
    """Exhaustively search odd constants in ``[lo, hi]`` and return the best.

    Defaults to the top quarter of the representable range, where the large
    constants with good distance live.
    """
    max_a = (1 << (word_bits - functional_bits)) - 1
    if hi is None:
        hi = max_a
    if lo is None:
        lo = (max_a * 3) // 4
    candidates = list(range(lo | 1, hi + 1, 2))
    return rank_constants(candidates, word_bits, functional_bits)[:top]
