"""Dead code elimination: drop unused side-effect-free instructions."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    ICmp,
    Load,
    Phi,
    PtrAdd,
    Select,
    Trunc,
    ZExt,
)
from repro.ir.module import Module

_PURE = (BinaryOp, ICmp, Select, PtrAdd, ZExt, Trunc, Load, Phi, Alloca)


def dead_code_elimination(module: Module) -> int:
    total = 0
    for func in module.functions.values():
        if func.blocks:
            total += _dce_function(func)
    return total


def _is_dead(instr) -> bool:
    if not isinstance(instr, _PURE):
        return False
    users = {u for u in instr.users if u is not instr}
    if isinstance(instr, Alloca):
        # An alloca only read (never stored) can still matter; be safe and
        # only drop completely unused ones.
        return not users
    return not users


def _dce_function(func: Function) -> int:
    removed = 0
    changed = True
    while changed:
        changed = False
        for instr in list(func.instructions()):
            if _is_dead(instr):
                instr.users.clear()
                instr.erase_from_parent()
                removed += 1
                changed = True
    return removed
