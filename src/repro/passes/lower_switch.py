"""Lower Switch pass (Figure 3).

Rewrites ``switch`` into a chain of equality compare+branch pairs, so every
multi-way decision becomes a sequence of conditional branches the AN Coder
can protect individually.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import CondBr, ICmp, Switch
from repro.ir.module import Module


def lower_switches(module: Module, only_protected: bool = False) -> int:
    total = 0
    for func in module.functions.values():
        if not func.blocks:
            continue
        if only_protected and not func.is_protected:
            continue
        total += _lower_function(func)
    return total


def _lower_function(func: Function) -> int:
    lowered = 0
    for block in list(func.blocks):
        term = block.terminator
        if isinstance(term, Switch):
            _lower_one(func, term)
            lowered += 1
    return lowered


def _lower_one(func: Function, switch: Switch) -> None:
    block = switch.parent
    assert block is not None
    value = switch.value
    default = switch.default
    cases = list(switch.cases)

    switch.users.clear()
    switch.erase_from_parent()

    if not cases:
        from repro.ir.instructions import Br

        block.append(Br(default))
        return

    current = block
    for i, (const, target) in enumerate(cases):
        is_last = i == len(cases) - 1
        cmp = ICmp("eq", value, const, f"swcase{i}")
        current.append(cmp)
        if is_last:
            next_block = default
        else:
            next_block = func.add_block(f"{block.name}.sw{i}", after=current)
        current.append(CondBr(cmp, target, next_block))
        # Phi incomings: the edge into `target` now originates from `current`;
        # the edge into `default` originates from the last chain block.
        for phi in target.phis:
            phi.replace_incoming_block(block, current)
        if is_last:
            for phi in default.phis:
                phi.replace_incoming_block(block, current)
        current = next_block
