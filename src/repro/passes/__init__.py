"""Middle-end passes (Figure 3 of the paper).

The pipeline mirrors the paper's modified LLVM flow:

    front end -> IR optimizers -> Loop Decoupler -> Lower Select ->
    Lower Switch -> AN Coder -> (back end)

plus the state-of-the-art *duplication* baseline used in Table III.
"""

from repro.passes.constfold import constant_fold
from repro.passes.dce import dead_code_elimination
from repro.passes.duplication import DuplicationPass
from repro.passes.loop_decoupler import LoopDecoupler
from repro.passes.lower_select import lower_selects
from repro.passes.lower_switch import lower_switches
from repro.passes.mem2reg import promote_memory_to_registers
from repro.passes.pipeline import PassPipeline, optimize, standard_pipeline

__all__ = [
    "DuplicationPass",
    "LoopDecoupler",
    "PassPipeline",
    "constant_fold",
    "dead_code_elimination",
    "lower_selects",
    "lower_switches",
    "optimize",
    "promote_memory_to_registers",
    "standard_pipeline",
]
