"""Pass pipeline assembly mirroring the paper's Figure 3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.an_coder import ANCoderPass
from repro.core.params import ProtectionParams
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.constfold import constant_fold
from repro.passes.dce import dead_code_elimination
from repro.passes.duplication import DEFAULT_ORDER, DuplicationPass
from repro.passes.loop_decoupler import decouple_loops
from repro.passes.lower_select import lower_selects
from repro.passes.lower_switch import lower_switches
from repro.passes.mem2reg import promote_memory_to_registers

#: Branch-protection schemes available to the driver (Table III columns).
SCHEMES = ("none", "duplication", "ancode")


@dataclass
class PassPipeline:
    """An ordered list of named module passes with verification between."""

    passes: list[tuple[str, Callable[[Module], object]]] = field(default_factory=list)
    verify_between: bool = True
    #: Filled during run(): pass name -> returned statistic.
    stats: dict[str, object] = field(default_factory=dict)

    def add(self, name: str, pass_fn: Callable[[Module], object]) -> "PassPipeline":
        self.passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> dict[str, object]:
        for name, pass_fn in self.passes:
            self.stats[name] = pass_fn(module)
            if self.verify_between:
                verify_module(module)
        return self.stats


def optimize(module: Module) -> None:
    """The baseline "IR Optimizers" stage: SSA construction + cleanups."""
    promote_memory_to_registers(module)
    constant_fold(module)
    dead_code_elimination(module)


def standard_pipeline(
    scheme: str = "ancode",
    params: ProtectionParams | None = None,
    duplication_order: int = DEFAULT_ORDER,
    operand_checks: bool = False,
) -> PassPipeline:
    """Figure 3's middle end for the chosen protection scheme.

    ``none``         -> plain optimized IR (the CFI-only Table III column),
    ``duplication``  -> the 6x comparison-tree baseline,
    ``ancode``       -> Loop Decoupler + Lower Select/Switch + AN Coder.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    pipeline = PassPipeline()
    pipeline.add("mem2reg", promote_memory_to_registers)
    pipeline.add("constfold", constant_fold)
    pipeline.add("dce", dead_code_elimination)
    if scheme == "ancode":
        pipeline.add("loop-decoupler", lambda m: decouple_loops(m))
        pipeline.add("lower-select", lambda m: lower_selects(m))
        pipeline.add("lower-switch", lambda m: lower_switches(m))
        pipeline.add("an-coder", ANCoderPass(params, operand_checks=operand_checks))
        pipeline.add("dce-post", dead_code_elimination)
    elif scheme == "duplication":
        pipeline.add("lower-select", lambda m: lower_selects(m))
        pipeline.add("lower-switch", lambda m: lower_switches(m))
        pipeline.add("duplication", DuplicationPass(duplication_order))
    return pipeline
