"""Pass pipeline assembly mirroring the paper's Figure 3."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.params import ProtectionParams
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.constfold import constant_fold
from repro.passes.dce import dead_code_elimination
from repro.passes.duplication import DEFAULT_ORDER
from repro.passes.mem2reg import promote_memory_to_registers

#: The paper's built-in Table III columns.  Deprecated as an enumeration
#: source: the authoritative, extensible set lives in
#: :mod:`repro.toolchain.registry` (``list_schemes()`` /
#: ``table3_schemes()``); this tuple remains only for older callers.
SCHEMES = ("none", "duplication", "ancode")


@dataclass
class PassPipeline:
    """An ordered list of named module passes with verification between."""

    passes: list[tuple[str, Callable[[Module], object]]] = field(default_factory=list)
    verify_between: bool = True
    #: Filled during run(): pass name -> returned statistic.
    stats: dict[str, object] = field(default_factory=dict)

    def add(self, name: str, pass_fn: Callable[[Module], object]) -> "PassPipeline":
        self.passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> dict[str, object]:
        for name, pass_fn in self.passes:
            self.stats[name] = pass_fn(module)
            if self.verify_between:
                verify_module(module)
        return self.stats


def optimize(module: Module) -> None:
    """The baseline "IR Optimizers" stage: SSA construction + cleanups."""
    promote_memory_to_registers(module)
    constant_fold(module)
    dead_code_elimination(module)


def standard_pipeline(
    scheme: str = "ancode",
    params: ProtectionParams | None = None,
    duplication_order: int = DEFAULT_ORDER,
    operand_checks: bool = False,
) -> PassPipeline:
    """Figure 3's middle end for the chosen protection scheme.

    Thin wrapper over the scheme registry: the builtin columns are

    ``none``         -> plain optimized IR (the CFI-only Table III column),
    ``duplication``  -> the 6x comparison-tree baseline,
    ``ancode``       -> Loop Decoupler + Lower Select/Switch + AN Coder,

    and anything registered via
    :func:`repro.toolchain.register_scheme` works the same way.
    """
    from repro.toolchain.config import CompileConfig
    from repro.toolchain.registry import build_pipeline

    return build_pipeline(
        CompileConfig(
            scheme=scheme,
            params=params,
            duplication_order=duplication_order,
            operand_checks=operand_checks,
        )
    )
