"""Lower Select pass (Figure 3).

The AN Coder protects *branches*; a ``select`` hides its condition in a data
move.  This pass rewrites every select in protected functions (and,
optionally, everywhere) into an explicit diamond so the decision becomes a
conditional branch the AN Coder can see.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Br, CondBr, Phi, Select
from repro.ir.module import Module


def lower_selects(module: Module, only_protected: bool = True) -> int:
    total = 0
    for func in module.functions.values():
        if not func.blocks:
            continue
        if only_protected and not func.is_protected:
            continue
        total += _lower_function(func)
    return total


def _lower_function(func: Function) -> int:
    lowered = 0
    for block in list(func.blocks):
        selects = [i for i in block.instructions if isinstance(i, Select)]
        for select in selects:
            _lower_one(func, select)
            lowered += 1
    return lowered


def _lower_one(func: Function, select: Select) -> None:
    block = select.parent
    assert block is not None
    index = block.instructions.index(select)

    # Split the block at the select (the select itself leaves the block).
    tail = func.add_block(f"{block.name}.tail", after=block)
    tail.instructions = block.instructions[index + 1 :]
    for instr in tail.instructions:
        instr.parent = tail
    block.instructions = block.instructions[:index]
    select.parent = None

    # Successor phis must now reference the tail block.
    for succ in tail.successors():
        for phi in succ.phis:
            phi.replace_incoming_block(block, tail)

    then_block = func.add_block(f"{block.name}.selt", after=block)
    else_block = func.add_block(f"{block.name}.self", after=then_block)
    then_block.append(Br(tail))
    else_block.append(Br(tail))

    cond = select.condition
    tv, fv = select.true_value, select.false_value

    phi = Phi(select.type, select.name or "sel")
    tail.insert(0, phi)
    select.replace_all_uses_with(phi)
    select.drop_operands()
    phi.add_incoming(tv, then_block)
    phi.add_incoming(fv, else_block)

    block.append(CondBr(cond, then_block, else_block))
