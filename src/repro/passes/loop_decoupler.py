"""Loop Decoupler pass (Figure 3).

The paper: *"a custom Loop Decoupler pass which separates loop induction
variables from the use in arithmetic expressions or memory accesses"*.

Why: a loop counter is typically used both to index memory (must stay a
plain integer — addresses are not AN-encoded) and in the loop-exit
comparison (should be AN-encoded so the trip count is protected).  Encoding
one shared SSA value for both purposes would force decode operations on the
address path.  This pass clones the induction variable: the *clone* feeds
the comparisons (and will be encoded by the AN Coder); the original keeps
feeding address arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dominance import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import BinaryOp, CondBr, ICmp, Phi
from repro.ir.module import Module
from repro.ir.values import Constant, Value


@dataclass
class _Loop:
    header: BasicBlock
    latches: list[BasicBlock]
    blocks: set[BasicBlock]


def find_natural_loops(func: Function) -> list[_Loop]:
    """Back edges (tail dominated by head) and their natural loop bodies."""
    dom = DominatorTree(func)
    loops: dict[BasicBlock, _Loop] = {}
    for block in dom.order:
        for succ in block.successors():
            if succ in dom.idom and dom.dominates(succ, block):
                loop = loops.setdefault(succ, _Loop(succ, [], {succ}))
                loop.latches.append(block)
                # Collect the loop body by walking predecessors from the latch.
                work = [block]
                while work:
                    current = work.pop()
                    if current in loop.blocks:
                        continue
                    loop.blocks.add(current)
                    work.extend(p for p in dom.preds[current] if p in dom.idom)
    return list(loops.values())


def decouple_loops(module: Module, only_protected: bool = True) -> int:
    total = 0
    for func in module.functions.values():
        if not func.blocks:
            continue
        if only_protected and not func.is_protected:
            continue
        total += _decouple_function(func)
    return total


class LoopDecoupler:
    """Callable pass object (pipeline style)."""

    def __init__(self, only_protected: bool = True):
        self.only_protected = only_protected

    def __call__(self, module: Module) -> int:
        return decouple_loops(module, self.only_protected)


def _decouple_function(func: Function) -> int:
    decoupled = 0
    for loop in find_natural_loops(func):
        for phi in list(loop.header.phis):
            if _decouple_phi(func, loop, phi):
                decoupled += 1
    return decoupled


def _comparison_users(phi: Phi, loop: _Loop) -> list[ICmp]:
    """ICmps inside the loop that use the phi and feed a conditional branch."""
    cmps = []
    for user in phi.users:
        if not isinstance(user, ICmp) or user.parent not in loop.blocks:
            continue
        if any(isinstance(u, CondBr) for u in user.users):
            cmps.append(user)
    return cmps


def _step_instruction(phi: Phi, loop: _Loop) -> BinaryOp | None:
    """The simple induction update ``phi +/- invariant`` from a latch."""
    for value, pred in phi.incomings:
        if pred not in loop.latches:
            continue
        if (
            isinstance(value, BinaryOp)
            and value.opcode in ("add", "sub")
            and value.parent in loop.blocks
        ):
            operands = value.operands
            if phi in operands:
                other = operands[1] if operands[0] is phi else operands[0]
                if _loop_invariant(other, loop):
                    return value
    return None


def _loop_invariant(value: Value, loop: _Loop) -> bool:
    from repro.ir.instructions import Instruction

    if not isinstance(value, Instruction):
        return True
    return value.parent not in loop.blocks


def _decouple_phi(func: Function, loop: _Loop, phi: Phi) -> bool:
    cmps = _comparison_users(phi, loop)
    if not cmps:
        return False
    step = _step_instruction(phi, loop)
    if step is None:
        return False
    other_users = {
        u for u in phi.users if u not in cmps and u is not phi and u is not step
    }
    if not other_users and step.users <= {phi}:
        return False  # nothing to decouple: the IV only feeds its comparison

    # Clone the phi and its update chain for comparison use.
    clone = Phi(phi.type, f"{phi.name or 'iv'}.cmp")
    loop.header.insert(0, clone)
    step_clone = BinaryOp(step.opcode, clone, _step_other(step, phi), f"{step.name}.cmp")
    step_block = step.parent
    assert step_block is not None
    step_clone.parent = None
    step_block.insert(step_block.instructions.index(step) + 1, step_clone)

    for value, pred in phi.incomings:
        clone.add_incoming(step_clone if value is step else value, pred)

    for cmp in cmps:
        cmp.replace_operand(phi, clone)
    return True


def _step_other(step: BinaryOp, phi: Phi) -> Value:
    return step.operands[1] if step.operands[0] is phi else step.operands[0]
