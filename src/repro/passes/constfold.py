"""Constant folding + trivial algebraic simplification + branch folding."""

from __future__ import annotations

from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.instructions import BinaryOp, Br, CondBr, ICmp, Select
from repro.ir.interp import _binary_op, _icmp
from repro.ir.module import Module
from repro.ir.values import Constant


def constant_fold(module: Module) -> int:
    """Fold constants module-wide; returns number of folded instructions."""
    total = 0
    for func in module.functions.values():
        if func.blocks:
            total += _fold_function(func)
    return total


def _fold_function(func: Function) -> int:
    folded = 0
    changed = True
    while changed:
        changed = False
        for instr in list(func.instructions()):
            replacement = None
            if isinstance(instr, BinaryOp):
                replacement = _fold_binary(instr)
            elif isinstance(instr, ICmp):
                if isinstance(instr.lhs, Constant) and isinstance(instr.rhs, Constant):
                    replacement = Constant(
                        instr.type, _icmp(instr.predicate, instr.lhs.value, instr.rhs.value)
                    )
            elif isinstance(instr, Select):
                if isinstance(instr.condition, Constant):
                    replacement = (
                        instr.true_value if instr.condition.value else instr.false_value
                    )
            if replacement is not None:
                instr.replace_all_uses_with(replacement)
                instr.erase_from_parent()
                folded += 1
                changed = True
        folded += _fold_branches(func)
    return folded


def _fold_binary(instr: BinaryOp):
    lhs, rhs = instr.lhs, instr.rhs
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        if instr.opcode in ("udiv", "sdiv", "urem", "srem") and rhs.value == 0:
            return None  # preserve the runtime trap semantics
        return Constant(
            instr.type, _binary_op(instr.opcode, lhs.value, rhs.value, instr.type.bits)
        )
    # Algebraic identities with a constant on one side.
    if isinstance(rhs, Constant):
        if rhs.value == 0 and instr.opcode in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
            return lhs
        if rhs.value == 1 and instr.opcode in ("mul", "udiv"):
            return lhs
        if rhs.value == 0 and instr.opcode in ("mul", "and"):
            return Constant(instr.type, 0)
    if isinstance(lhs, Constant):
        if lhs.value == 0 and instr.opcode in ("add", "or", "xor"):
            return rhs
        if lhs.value == 1 and instr.opcode == "mul":
            return rhs
        if lhs.value == 0 and instr.opcode in ("mul", "and"):
            return Constant(instr.type, 0)
    return None


def _fold_branches(func: Function) -> int:
    """Turn ``condbr const, a, b`` into an unconditional branch."""
    folded = 0
    for block in list(func.blocks):
        term = block.terminator
        if not isinstance(term, CondBr):
            continue
        if term.protected is not None:
            continue  # never fold away a protected branch
        if not isinstance(term.condition, Constant):
            continue
        taken = term.then_block if term.condition.value else term.else_block
        dropped = term.else_block if term.condition.value else term.then_block
        if dropped is not taken:
            for phi in dropped.phis:
                if block in phi.incoming_blocks:
                    phi.remove_incoming(block)
        term.users.clear()
        term.erase_from_parent()
        block.append(Br(taken))
        folded += 1
    if folded:
        remove_unreachable_blocks(func)
    return folded
