"""SSA construction: promote word-sized allocas to registers.

Standard algorithm: phi placement on the iterated dominance frontier of the
store blocks, then a rename walk over the dominator tree.  The MiniC front
end emits every local variable as an alloca; this pass turns them into
proper SSA values so the protection passes see real data flow.
"""

from __future__ import annotations

from repro.ir.dominance import DominatorTree
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Alloca, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.types import I32
from repro.ir.values import Undef, Value


def promote_memory_to_registers(module: Module) -> int:
    """Promote in every function; returns number of promoted allocas."""
    total = 0
    for func in module.functions.values():
        if func.blocks:
            total += _promote_function(func)
    return total


def _promotable(alloca: Alloca) -> bool:
    if not alloca.is_scalar_word:
        return False
    for user in alloca.users:
        if isinstance(user, Load):
            if user.type is not I32:
                return False
        elif isinstance(user, Store):
            # The alloca must be the *pointer*, never the stored value.
            if user.value is alloca:
                return False
        else:
            return False
    return True


def _promote_function(func: Function) -> int:
    allocas = [
        instr
        for instr in func.entry.instructions
        if isinstance(instr, Alloca) and _promotable(instr)
    ]
    if not allocas:
        return 0

    dom = DominatorTree(func)
    reachable = set(dom.order)

    # -- phi placement ---------------------------------------------------
    phi_for: dict[Phi, Alloca] = {}
    for alloca in allocas:
        def_blocks = {
            u.parent
            for u in alloca.users
            if isinstance(u, Store) and u.parent in reachable
        }
        placed: set[BasicBlock] = set()
        work = list(def_blocks)
        while work:
            block = work.pop()
            for frontier_block in dom.frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi(I32, alloca.name or "mem")
                frontier_block.insert(0, phi)
                phi_for[phi] = alloca
                if frontier_block not in def_blocks:
                    work.append(frontier_block)

    # -- rename walk -------------------------------------------------------
    alloca_set = set(allocas)
    undef = Undef(I32)

    def rename(block: BasicBlock, incoming: dict[Alloca, Value]) -> None:
        current = dict(incoming)
        for instr in list(block.instructions):
            if isinstance(instr, Phi) and instr in phi_for:
                current[phi_for[instr]] = instr
            elif isinstance(instr, Load) and instr.pointer in alloca_set:
                value = current.get(instr.pointer, undef)
                instr.replace_all_uses_with(value)
                instr.erase_from_parent()
            elif isinstance(instr, Store) and instr.pointer in alloca_set:
                current[instr.pointer] = instr.value
                instr.erase_from_parent()
        for succ in block.successors():
            for phi in succ.phis:
                if phi in phi_for and block not in phi.incoming_blocks:
                    phi.add_incoming(current.get(phi_for[phi], undef), block)
        for child in dom.children.get(block, ()):
            rename(child, current)

    rename(func.entry, {})

    for alloca in allocas:
        assert not alloca.users, f"alloca {alloca.display} still used"
        alloca.erase_from_parent()

    _prune_dead_phis(phi_for)
    return len(allocas)


def _prune_dead_phis(phi_for: dict[Phi, "Alloca"]) -> None:
    """Remove placed phis that ended up unused (semi-pruned cleanup)."""
    changed = True
    while changed:
        changed = False
        for phi in list(phi_for):
            users = {u for u in phi.users if u is not phi}
            if not users and phi.parent is not None:
                phi.users.clear()
                phi.erase_from_parent()
                del phi_for[phi]
                changed = True
