"""Branch duplication baseline (Section II-C / Table III "Duplication").

State-of-the-art countermeasure the paper compares against: each protected
conditional branch is replicated ``order`` times consecutively, forming a
comparison tree.  On the taken path the condition is re-checked ``order-1``
times; on the not-taken path the negated condition is re-checked.  Any
disagreement jumps to a fault handler (a ``trap``).

A single fault flips at most one of the checks and is detected; *repeating
the same fault* at every duplicated branch defeats the scheme (the paper's
criticism, quantified by experiment E6).
"""

from __future__ import annotations

from repro.ir.cfg import split_critical_edges
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, CondBr, ICmp, Trap
from repro.ir.module import Module

#: Matches the paper: six-fold duplication gives "comparable single bit
#: fault tolerance" to the 6-bit Hamming distance of the AN code.
DEFAULT_ORDER = 6

#: Negation map for re-checking on the not-taken path.
_NEGATE = {
    "eq": "ne",
    "ne": "eq",
    "ult": "uge",
    "uge": "ult",
    "ule": "ugt",
    "ugt": "ule",
    "slt": "sge",
    "sge": "slt",
    "sle": "sgt",
    "sgt": "sle",
}


class DuplicationPass:
    """Replicates eligible conditional branches ``order`` times."""

    def __init__(self, order: int = DEFAULT_ORDER, only_protected: bool = True):
        if order < 1:
            raise ValueError("duplication order must be >= 1")
        self.order = order
        self.only_protected = only_protected

    def __call__(self, module: Module) -> int:
        total = 0
        for func in module.functions.values():
            if not func.blocks:
                continue
            if self.only_protected and not func.is_protected:
                continue
            total += self._run_function(func)
        return total

    def _run_function(self, func: Function) -> int:
        split_critical_edges(func)
        duplicated = 0
        for block in list(func.blocks):
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            if not isinstance(term.condition, ICmp):
                continue
            if term.condition.parent is not block:
                continue  # keep it simple: condition computed in-block
            self._duplicate_branch(func, term)
            duplicated += 1
        return duplicated

    def _duplicate_branch(self, func: Function, branch: CondBr) -> None:
        if self.order == 1:
            return
        cmp = branch.condition
        assert isinstance(cmp, ICmp)
        lhs, rhs = cmp.lhs, cmp.rhs
        fault = self._fault_block(func)

        branch.then_block = self._chain(
            func, branch.then_block, branch.parent, cmp.predicate, lhs, rhs, fault, "dupt"
        )
        branch.else_block = self._chain(
            func,
            branch.else_block,
            branch.parent,
            _NEGATE[cmp.predicate],
            lhs,
            rhs,
            fault,
            "dupf",
        )

    def _chain(
        self,
        func: Function,
        final: BasicBlock,
        branch_block: BasicBlock,
        predicate: str,
        lhs,
        rhs,
        fault: BasicBlock,
        tag: str,
    ) -> BasicBlock:
        """Build order-1 re-check blocks ending at ``final``; returns head."""
        head = final
        for i in range(self.order - 1):
            check = func.add_block(f"{branch_block.name}.{tag}{i}")
            recheck = ICmp(predicate, lhs, rhs, f"{tag}{i}")
            check.append(recheck)
            check.append(CondBr(recheck, head, fault))
            head = check
        # Retarget phis in the final block: its predecessor changes from the
        # branch block to the last check block in the chain.
        if head is not final:
            last_check = head
            # walk to the check block that directly precedes `final`
            for phi in final.phis:
                if branch_block in phi.incoming_blocks:
                    chain_pred = self._chain_pred(final, branch_block, head)
                    phi.replace_incoming_block(branch_block, chain_pred)
        return head

    @staticmethod
    def _chain_pred(final: BasicBlock, branch_block: BasicBlock, head: BasicBlock) -> BasicBlock:
        block = head
        while True:
            term = block.terminator
            assert isinstance(term, CondBr)
            nxt = term.then_block
            if nxt is final:
                return block
            block = nxt

    def _fault_block(self, func: Function) -> BasicBlock:
        for block in func.blocks:
            if block.name == "fault.detected":
                return block
        block = func.add_block("fault.detected")
        # Trap code 2: duplication comparison tree disagreement.
        block.append(Trap(2))
        return block
