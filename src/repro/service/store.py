"""Persistent job/result store (SQLite) for the campaign service.

Finished campaigns are never recomputed: results are keyed by the
content-derived job id (:mod:`repro.service.jobs`), so a resubmission —
same process, after a restart, or from a different client — is answered
from disk.  The store also keeps the durable job ledger the scheduler
resumes from (jobs that were ``queued``/``running`` when a process died
go back on the queue) and a replayable stream of lifecycle events.

Concurrency: WAL journaling plus a per-connection lock make one
``ResultStore`` safe to share between threads, and multiple instances
(even in different processes) safe to point at the same file — SQLite
serialises the writers, ``busy_timeout`` absorbs the contention.

Schema changes bump :data:`SCHEMA_VERSION` (kept in ``PRAGMA
user_version``); opening a store written by a different schema fails
loudly instead of corrupting it.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional, Union

#: Bump on incompatible schema changes (stored in ``PRAGMA user_version``).
#: v2 added the ``shards`` table (partial fleet results); v3 added the
#: ``traces`` table (per-job observability spans).  Older databases are
#: migrated in place (purely additive DDL).
SCHEMA_VERSION = 3

#: Job lifecycle states.
STATES = ("queued", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    spec         TEXT NOT NULL,
    state        TEXT NOT NULL,
    error        TEXT,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL
);
CREATE TABLE IF NOT EXISTS results (
    job_id           TEXT PRIMARY KEY REFERENCES jobs(job_id),
    payload          TEXT NOT NULL,
    trials           INTEGER,
    simulated_cycles INTEGER,
    created_at       REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    job_id  TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state);
"""

#: Added in v2: one row per completed fleet shard, keyed by the shard's
#: content hash so duplicate completions collapse.  Rows only exist
#: while their job is unfinished (``store_result`` clears them); after a
#: coordinator crash they are the resume points.
_SCHEMA_V2 = """
CREATE TABLE IF NOT EXISTS shards (
    shard_id        TEXT PRIMARY KEY,
    job_id          TEXT NOT NULL,
    attack_index    INTEGER NOT NULL,
    scheme_revision INTEGER NOT NULL,
    payload         TEXT NOT NULL,
    created_at      REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS shards_by_job ON shards(job_id);
"""

#: Added in v3: one row per span of a job's observability trace
#: (:mod:`repro.obs.trace`).  Traces are written once, when the job
#: reaches a terminal state, and replace any earlier attempt's rows —
#: ``GET /jobs/<id>/trace`` is answered from here after a restart.
_SCHEMA_V3 = """
CREATE TABLE IF NOT EXISTS traces (
    job_id TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    span   TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


class StoreError(RuntimeError):
    """A result-store operation failed."""


class SchemaMismatchError(StoreError):
    """The database was written by an incompatible store version."""


@dataclass(frozen=True)
class JobRecord:
    """One row of the job ledger."""

    job_id: str
    kind: str
    spec: dict[str, Any]
    state: str
    error: Optional[str]
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]

    def to_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "title": self.spec.get("title", ""),
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class ResultStore:
    """SQLite-backed job ledger + result/outcome-tally store."""

    def __init__(self, path: Union[str, Path] = ":memory:", timeout: float = 30.0):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path,
            timeout=timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit; explicit BEGINs below
        )
        self._conn.row_factory = sqlite3.Row
        self._init_schema()

    # -- lifecycle ---------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock:
            if self.path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                version = self._conn.execute("PRAGMA user_version").fetchone()[0]
                if version in (0, 1, 2):
                    # No executescript here: it would implicitly commit the
                    # BEGIN IMMEDIATE guarding concurrent creators.  Every
                    # schema bump so far only *adds* tables, so upgrading
                    # any older version is the same additive DDL.
                    for statement in (_SCHEMA + _SCHEMA_V2 + _SCHEMA_V3).split(";"):
                        if statement.strip():
                            self._conn.execute(statement)
                    self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
                elif version != SCHEMA_VERSION:
                    raise SchemaMismatchError(
                        f"store {self.path!r} has schema v{version}, this "
                        f"build speaks v{SCHEMA_VERSION}; migrate or use a "
                        f"fresh database file"
                    )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- job ledger --------------------------------------------------------
    def record_job(
        self, job_id: str, kind: str, spec: dict[str, Any], force: bool = False
    ) -> None:
        """Insert (or re-queue) a job in state ``queued``.

        Re-recording an existing job resets a failed/cancelled attempt to
        ``queued`` but never touches a ``done`` row (results are final)
        unless ``force`` — the scheduler forces when a stored result was
        deliberately invalidated (e.g. its scheme builder was replaced).
        """
        now = time.time()
        guard = "" if force else "WHERE jobs.state != 'done'"
        with self._lock:
            self._conn.execute(
                f"""
                INSERT INTO jobs (job_id, kind, spec, state, submitted_at)
                VALUES (?, ?, ?, 'queued', ?)
                ON CONFLICT(job_id) DO UPDATE SET
                    state = 'queued', error = NULL,
                    submitted_at = excluded.submitted_at,
                    started_at = NULL, finished_at = NULL
                {guard}
                """,
                (job_id, kind, json.dumps(spec), now),
            )

    def set_state(
        self, job_id: str, state: str, error: Optional[str] = None
    ) -> None:
        if state not in STATES:
            raise StoreError(f"unknown job state {state!r}; expected {STATES}")
        now = time.time()
        started = now if state == "running" else None
        finished = now if state in ("done", "failed", "cancelled") else None
        with self._lock:
            cursor = self._conn.execute(
                """
                UPDATE jobs SET state = ?, error = ?,
                    started_at = COALESCE(?, started_at),
                    finished_at = COALESCE(?, finished_at)
                WHERE job_id = ?
                """,
                (state, error, started, finished, job_id),
            )
            if cursor.rowcount == 0:
                raise StoreError(f"unknown job {job_id!r}")

    def get_job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._record(row) if row is not None else None

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> list[JobRecord]:
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY submitted_at DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [self._record(row) for row in rows]

    def resumable_jobs(self) -> list[JobRecord]:
        """Jobs a restarted service should put back on its queue: anything
        left ``queued`` or ``running`` by a previous process."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state IN ('queued', 'running') "
                "ORDER BY submitted_at"
            ).fetchall()
        return [self._record(row) for row in rows]

    def recover_interrupted(self) -> int:
        """Startup sweep: reset jobs a dead coordinator left ``running``.

        A coordinator killed between the ledger insert and its first
        event — or anywhere mid-execution — leaves the row ``running``
        with no process behind it.  Until the scheduler re-enqueues it,
        such a row is a *phantom*: ``/jobs/<id>`` reports RUNNING work
        that nobody is doing (and ``--no-resume`` services would report
        it forever).  The sweep resets those rows to ``queued`` (their
        completed fleet shards, if any, stay in ``shards`` and are
        reused on resume).  Returns the number of rows swept.

        Call this only at startup, before serving: with two live
        coordinator processes sharing one database it would re-queue the
        other process's genuinely-running jobs (harmless — results are
        content-keyed and idempotent — but wasteful).
        """
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'queued', error = NULL, "
                "started_at = NULL WHERE state = 'running'"
            )
        return cursor.rowcount

    def counts(self) -> dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            job_id=row["job_id"],
            kind=row["kind"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            error=row["error"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
        )

    # -- results -----------------------------------------------------------
    def store_result(self, job_id: str, payload: dict[str, Any]) -> None:
        """Persist a finished job's result payload and mark it ``done``."""
        attacks = (payload.get("report") or {}).get("attacks") or {}
        trials = sum(a.get("trials", 0) for a in attacks.values()) or None
        cycles = (
            sum(a.get("simulated_cycles", 0) for a in attacks.values()) or None
        )
        now = time.time()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    """
                    INSERT OR REPLACE INTO results
                        (job_id, payload, trials, simulated_cycles, created_at)
                    VALUES (?, ?, ?, ?, ?)
                    """,
                    (job_id, json.dumps(payload), trials, cycles, now),
                )
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = 'done', error = NULL, "
                    "finished_at = ? WHERE job_id = ?",
                    (now, job_id),
                )
                if cursor.rowcount == 0:
                    raise StoreError(f"unknown job {job_id!r}")
                # Partial fleet results are resume points, not archives:
                # once the merged result is durable they are dead weight.
                self._conn.execute(
                    "DELETE FROM shards WHERE job_id = ?", (job_id,)
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def get_result(self, job_id: str) -> Optional[dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE job_id = ?", (job_id,)
            ).fetchone()
        return json.loads(row["payload"]) if row is not None else None

    def has_result(self, job_id: str) -> bool:
        """Existence check without deserialising the (possibly large)
        payload — the HTTP tier's gate for the analysis endpoints."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE job_id = ?", (job_id,)
            ).fetchone()
        return row is not None

    # -- analysis ----------------------------------------------------------
    def get_report(self, job_id: str):
        """The stored campaign result as a live
        :class:`~repro.faults.isa_campaign.CampaignReport` (None when the
        job has no stored result)."""
        payload = self.get_result(job_id)
        if payload is None or "report" not in payload:
            return None
        from repro.service.jobs import report_from_dict

        return report_from_dict(payload["report"])

    def vulnerability_map(self, job_id: str, workbench=None):
        """Build the job's per-instruction
        :class:`~repro.analysis.vulnmap.VulnerabilityMap` from its stored
        result — compile (cached) + one golden run, zero trial
        re-executions.  See :func:`repro.analysis.map_from_store`."""
        from repro.analysis.vulnmap import map_from_store

        return map_from_store(self, job_id, workbench=workbench)

    def scheme_diff(self, job_a: str, job_b: str, workbench=None):
        """Residual-vulnerability diff of two stored campaigns over the
        same workload (see :func:`repro.analysis.diff_from_store`)."""
        from repro.analysis.diff import diff_from_store

        return diff_from_store(self, job_a, job_b, workbench=workbench)

    # -- fleet shards ------------------------------------------------------
    def store_shard(
        self,
        shard_id: str,
        job_id: str,
        attack_index: int,
        scheme_revision: int,
        payload: dict[str, Any],
    ) -> bool:
        """Persist one completed fleet shard; returns ``True`` when the
        row is new, ``False`` for a duplicate completion (the row is
        refreshed either way — shard ids are content hashes, so two
        honest writers carry byte-identical payloads and a stale row
        from a superseded scheme revision is safely replaced)."""
        with self._lock:
            existed = (
                self._conn.execute(
                    "SELECT 1 FROM shards WHERE shard_id = ?", (shard_id,)
                ).fetchone()
                is not None
            )
            self._conn.execute(
                """
                INSERT OR REPLACE INTO shards
                    (shard_id, job_id, attack_index, scheme_revision,
                     payload, created_at)
                VALUES (?, ?, ?, ?, ?, ?)
                """,
                (
                    shard_id,
                    job_id,
                    attack_index,
                    scheme_revision,
                    json.dumps(payload),
                    time.time(),
                ),
            )
        return not existed

    def shard_payloads(
        self, job_id: str
    ) -> dict[str, tuple[int, int, dict[str, Any]]]:
        """The job's stored partial results:
        ``{shard_id: (attack_index, scheme_revision, payload)}``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_id, attack_index, scheme_revision, payload "
                "FROM shards WHERE job_id = ? ORDER BY attack_index",
                (job_id,),
            ).fetchall()
        return {
            row["shard_id"]: (
                row["attack_index"],
                row["scheme_revision"],
                json.loads(row["payload"]),
            )
            for row in rows
        }

    def clear_shards(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM shards WHERE job_id = ?", (job_id,)
            )

    # -- traces ------------------------------------------------------------
    def store_trace(self, job_id: str, spans: list[dict[str, Any]]) -> None:
        """Persist a job's observability trace (one row per span),
        replacing any trace from an earlier attempt — a resubmitted job's
        trace must not interleave with its predecessor's."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "DELETE FROM traces WHERE job_id = ?", (job_id,)
                )
                self._conn.executemany(
                    "INSERT INTO traces (job_id, seq, span) VALUES (?, ?, ?)",
                    [
                        (job_id, seq, json.dumps(span, sort_keys=True))
                        for seq, span in enumerate(spans)
                    ],
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def get_trace(self, job_id: str) -> Optional[list[dict[str, Any]]]:
        """The job's stored trace spans in order (``None`` when the job
        never recorded one — observability off, or still running)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT span FROM traces WHERE job_id = ? ORDER BY seq",
                (job_id,),
            ).fetchall()
        if not rows:
            return None
        return [json.loads(row["span"]) for row in rows]

    # -- events ------------------------------------------------------------
    def append_event(self, job_id: str, payload: dict[str, Any]) -> int:
        """Append one lifecycle event; returns its sequence number."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                seq = self._conn.execute(
                    "SELECT 1 + COALESCE(MAX(seq), 0) FROM events "
                    "WHERE job_id = ?",
                    (job_id,),
                ).fetchone()[0]
                self._conn.execute(
                    "INSERT INTO events (job_id, seq, payload) VALUES (?, ?, ?)",
                    (job_id, seq, json.dumps(payload)),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return seq

    def events(self, job_id: str) -> list[dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM events WHERE job_id = ? ORDER BY seq",
                (job_id,),
            ).fetchall()
        return [json.loads(row["payload"]) for row in rows]

    def clear_events(self, job_ids: Iterable[str]) -> None:
        ids = list(job_ids)
        if not ids:
            return
        with self._lock:
            self._conn.executemany(
                "DELETE FROM events WHERE job_id = ?", [(i,) for i in ids]
            )
