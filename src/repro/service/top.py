"""``python -m repro.service top`` — a live terminal view of the service.

Polls ``GET /status`` and renders queue depth, runner utilisation, fleet
shard states, and trial throughput, refreshing in place like ``top(1)``.
Throughput is computed client-side from the deltas of the engine
counters the ``/status`` observability block carries between two polls —
the server never keeps rates, only monotonic counters.

:func:`render_top` is pure (status dicts in, string out) so the view is
unit-testable without a terminal or a service; :func:`run_top` owns the
poll-sleep-redraw loop.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional

#: ANSI: cursor home + clear-to-end (redraw in place without flicker).
_CLEAR = "\x1b[H\x1b[J"


def _rate(
    current: dict[str, Any],
    previous: Optional[dict[str, Any]],
    field: str,
    interval: Optional[float],
) -> Optional[float]:
    """Per-second delta of one engine counter between two status polls
    (None on the first poll — there is nothing to difference yet)."""
    if previous is None or not interval or interval <= 0:
        return None
    now = ((current.get("observability") or {}).get("engine") or {}).get(field)
    before = ((previous.get("observability") or {}).get("engine") or {}).get(field)
    if now is None or before is None:
        return None
    return max(0.0, (now - before) / interval)


def _fmt_rate(value: Optional[float], unit: str) -> str:
    if value is None:
        return f"--- {unit}"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M {unit}"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k {unit}"
    return f"{value:.1f} {unit}"


def render_top(
    status: dict[str, Any],
    previous: Optional[dict[str, Any]] = None,
    interval: Optional[float] = None,
) -> str:
    """One frame of the live view, as plain text.

    ``previous`` is the status from the prior poll and ``interval`` the
    seconds between the two; together they turn the monotonic engine
    counters into trials/sec and cycles/sec.
    """
    queue = status.get("queue") or {}
    fleet = status.get("fleet") or {}
    jobs = status.get("jobs") or {}
    cache = status.get("compile_cache") or {}
    obs = status.get("observability") or {}
    engine = obs.get("engine") or {}

    inflight = queue.get("submitted", 0) - (
        queue.get("executed", 0)
        + queue.get("failed", 0)
        + queue.get("cancelled", 0)
    )
    lines = [
        f"repro.service {status.get('version', '?')} — "
        f"{status.get('service', 'repro.service')}"
        + ("" if obs.get("enabled", True) else "  [observability off]"),
        "",
        f"jobs      submitted {queue.get('submitted', 0):>6}   "
        f"executed {queue.get('executed', 0):>6}   "
        f"failed {queue.get('failed', 0):>4}   "
        f"cancelled {queue.get('cancelled', 0):>4}   "
        f"in flight {max(0, inflight):>4}",
        f"dedup     inflight {queue.get('deduplicated_inflight', 0):>7}   "
        f"store {queue.get('deduplicated_store', 0):>9}",
        f"store     "
        + (
            "   ".join(
                f"{state} {count}" for state, count in sorted(jobs.items())
            )
            or "(empty)"
        ),
        f"runners   {status.get('runners', '?')} slots × "
        f"{status.get('trial_workers', 0)} trial worker(s)",
        f"compile   hits {cache.get('hits', 0)}   misses {cache.get('misses', 0)}   "
        f"cached {cache.get('programs', 0)}",
        "",
        f"fleet     workers {len(fleet.get('workers') or ()):>3}   "
        f"jobs {fleet.get('jobs', 0):>3}   shards "
        + (
            "  ".join(
                f"{state}={count}"
                for state, count in sorted((fleet.get("shards") or {}).items())
            )
            or "(none)"
        ),
        f"          "
        + "   ".join(
            f"{name} {count}"
            for name, count in sorted((fleet.get("counters") or {}).items())
            if count
        ),
        "",
        f"engine    trials {engine.get('trials', 0):>10}   "
        f"instructions {engine.get('simulated_instructions', 0):>12}   "
        f"cycles {engine.get('simulated_cycles', 0):>12}",
        f"rate      {_fmt_rate(_rate(status, previous, 'trials', interval), 'trials/s'):>16}   "
        f"{_fmt_rate(_rate(status, previous, 'simulated_cycles', interval), 'cycles/s'):>18}",
    ]
    return "\n".join(line.rstrip() for line in lines) + "\n"


def run_top(
    client,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out=None,
    clear: bool = True,
) -> int:
    """Poll-and-redraw until ^C (or ``iterations`` frames, for tests).

    ``client`` is a :class:`~repro.service.client.ServiceClient`; the
    loop survives transient poll failures the same way the fleet runner
    does — show the error, keep polling.
    """
    from repro.service.client import ServiceError

    out = out if out is not None else sys.stdout
    previous: Optional[dict[str, Any]] = None
    elapsed: Optional[float] = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            polled_at = time.perf_counter()
            try:
                status = client.service_status()
            except ServiceError as exc:
                out.write(f"(service unreachable: {exc})\n")
                out.flush()
                frames += 1
                if iterations is None or frames < iterations:
                    time.sleep(interval)
                continue
            frame = render_top(status, previous=previous, interval=elapsed)
            out.write((_CLEAR if clear else "") + frame)
            out.flush()
            previous = status
            frames += 1
            if iterations is None or frames < iterations:
                time.sleep(interval)
                elapsed = time.perf_counter() - polled_at
    except KeyboardInterrupt:
        pass
    return 0
