"""Serialisable job specs for the campaign service.

A job is everything a service worker needs to reproduce a piece of work
from nothing but JSON: MiniC source text, a
:class:`~repro.toolchain.config.CompileConfig`, optional global
initializers (device-image bytes), and — for campaign jobs — the target
workload plus a list of *named* attack suites.

Job ids are stable content hashes derived from the same ingredients as
the :class:`~repro.toolchain.workbench.Workbench` compile-cache key
(source hash + config ``cache_key()``) plus the workload/attack spec, so

* identical submissions deduplicate — in flight, in the compile cache,
  and in the persistent :class:`~repro.service.store.ResultStore`;
* a client can compute the id locally, before (or without) submitting.

Attack suites are referenced by name (:data:`ATTACK_SUITES`), never by
pickled callables: the service trusts its own registry, not the wire.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.faults.adversary import adversary_sweep
from repro.faults.isa_campaign import (
    AttackResult,
    CampaignReport,
    branch_flip_sweep,
    operand_corruption_sweep,
    repeated_branch_flip,
    skip_sweep,
)
from repro.spec.campaign import speculative_sweep
from repro.toolchain.config import CompileConfig

#: Job wire-format version (bump on incompatible layout changes).
JOB_SCHEMA_VERSION = 1

#: The stock attack suites a job may reference, by wire name.
ATTACK_SUITES: dict[str, Callable[..., AttackResult]] = {
    "skip-sweep": skip_sweep,
    "branch-flip": branch_flip_sweep,
    "repeated-branch-flip": repeated_branch_flip,
    "operand-corruption": operand_corruption_sweep,
    "adversary": adversary_sweep,
    "speculative": speculative_sweep,
}

#: Parameters of the suites that the *service* controls, not the job
#: (``record_trials`` is always on server-side so stored results can
#: build vulnerability maps without re-execution).
_RESERVED_SUITE_PARAMS = {
    "program",
    "function",
    "args",
    "engine",
    "executor",
    "record_trials",
    "spec",
}


#: Trial engines a service process may run campaigns on.  Reports are
#: engine-independent by construction (byte-identical;
#: ``tests/test_engine_equivalence.py`` enforces it), so the choice is
#: purely a throughput knob and never part of a job/shard id.
SERVICE_ENGINES = ("fork", "superblock")

_default_engine = os.environ.get("REPRO_SERVICE_ENGINE", "fork")


def set_default_engine(engine: str) -> None:
    """Select the trial engine this service process runs campaigns on
    (service CLI: ``--engine``; env: ``REPRO_SERVICE_ENGINE``)."""
    if engine not in SERVICE_ENGINES:
        raise JobError(
            f"unknown service engine {engine!r}; expected one of "
            f"{SERVICE_ENGINES}"
        )
    global _default_engine
    _default_engine = engine


def default_engine() -> str:
    """The trial engine campaign jobs execute on in this process."""
    if _default_engine not in SERVICE_ENGINES:
        raise JobError(
            f"REPRO_SERVICE_ENGINE={_default_engine!r} is not one of "
            f"{SERVICE_ENGINES}"
        )
    return _default_engine


class JobError(ValueError):
    """A job spec that cannot be built, parsed, or executed."""


class JobCancelled(RuntimeError):
    """Raised inside ``execute`` when the scheduler requests cancellation."""


def suite_name_for(attack_fn: Callable) -> str:
    """The wire name of a stock attack suite (reverse registry lookup)."""
    for name, fn in ATTACK_SUITES.items():
        if fn is attack_fn:
            return name
    raise JobError(
        f"{getattr(attack_fn, '__name__', attack_fn)!r} is not a stock "
        f"attack suite; service jobs can only reference "
        f"{sorted(ATTACK_SUITES)}"
    )


def _jsonable(value: Any) -> Any:
    """Normalise an attack kwarg to a JSON value (ranges/tuples -> lists)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple, range, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    raise JobError(
        f"attack kwarg value {value!r} is not serialisable; use "
        f"ints/strings/bools/lists"
    )


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class AttackSpec:
    """One named attack suite plus its (JSON-canonical) keyword arguments."""

    suite: str
    #: Canonical JSON object text — kept as a string so the spec stays
    #: hashable and the job id is byte-stable.
    kwargs_json: str = "{}"
    #: Overrides the result's attack label (must be unique within a job).
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.suite not in ATTACK_SUITES:
            raise JobError(
                f"unknown attack suite {self.suite!r}; known: "
                f"{sorted(ATTACK_SUITES)}"
            )
        try:
            kwargs = json.loads(self.kwargs_json)
        except json.JSONDecodeError as exc:
            raise JobError(f"attack kwargs are not valid JSON: {exc}") from exc
        if not isinstance(kwargs, dict):
            raise JobError(f"attack kwargs must be an object, got {kwargs!r}")
        accepted = inspect.signature(ATTACK_SUITES[self.suite]).parameters
        unknown = set(kwargs) - (set(accepted) - _RESERVED_SUITE_PARAMS)
        if unknown:
            raise JobError(
                f"suite {self.suite!r} does not accept kwargs "
                f"{sorted(unknown)}; accepted: "
                f"{sorted(set(accepted) - _RESERVED_SUITE_PARAMS)}"
            )

    @classmethod
    def make(
        cls, suite: str, label: Optional[str] = None, **kwargs: Any
    ) -> "AttackSpec":
        """Build a spec, canonicalising ``kwargs`` (tuples/ranges become
        lists; unserialisable values raise :class:`JobError`)."""
        canonical = _canonical_json({k: _jsonable(v) for k, v in kwargs.items()})
        return cls(suite=suite, kwargs_json=canonical, label=label)

    @property
    def kwargs(self) -> dict[str, Any]:
        return json.loads(self.kwargs_json)

    @property
    def default_label(self) -> str:
        """The label the suite's AttackResult will carry unless overridden."""
        return self.label or _SUITE_RESULT_LABELS[self.suite]

    def to_dict(self) -> dict[str, Any]:
        return {"suite": self.suite, "kwargs": self.kwargs, "label": self.label}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AttackSpec":
        if not isinstance(data, dict):
            raise JobError(f"attack spec must be an object, got {data!r}")
        unknown = set(data) - {"suite", "kwargs", "label"}
        if unknown:
            raise JobError(f"unknown attack spec fields: {sorted(unknown)}")
        if "suite" not in data:
            raise JobError("attack spec is missing 'suite'")
        return cls.make(
            data["suite"], label=data.get("label"), **(data.get("kwargs") or {})
        )


#: Label each suite's AttackResult carries, read off the suite functions
#: themselves (``fn.attack_label``) so the wire layer cannot drift from
#: :mod:`repro.faults.isa_campaign` — used to detect label collisions at
#: job-validation time instead of mid-campaign.
_SUITE_RESULT_LABELS = {
    name: fn.attack_label for name, fn in ATTACK_SUITES.items()
}


def _decode_initializers(
    initializers: Iterable[tuple[str, str]]
) -> dict[str, bytes]:
    try:
        return {name: bytes.fromhex(data) for name, data in initializers}
    except (ValueError, TypeError) as exc:
        raise JobError(f"bad initializer bytes: {exc}") from exc


def _freeze_initializers(pairs: Any) -> tuple[tuple[str, str], ...]:
    frozen = []
    for pair in pairs:
        name, data = pair
        if not isinstance(name, str) or not isinstance(data, str):
            raise JobError(f"initializers must be (name, hex) pairs, got {pair!r}")
        frozen.append((name, data.lower()))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class CampaignJob:
    """A full compile-and-attack campaign as one frozen, serialisable value."""

    kind = "campaign"

    source: str
    function: str
    args: tuple[int, ...] = ()
    config: CompileConfig = field(default_factory=CompileConfig)
    attacks: tuple[AttackSpec, ...] = ()
    #: ``(global name, hex bytes)`` pairs installed before compilation.
    initializers: tuple[tuple[str, str], ...] = ()
    #: Human-readable display title (not part of the job id).
    title: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.source, str) or not self.source.strip():
            raise JobError("campaign job needs non-empty MiniC source text")
        if not isinstance(self.function, str) or not self.function:
            raise JobError("campaign job needs a target function name")
        if not isinstance(self.config, CompileConfig):
            raise JobError(
                f"config must be a CompileConfig, got {type(self.config).__name__}"
            )
        object.__setattr__(self, "args", tuple(int(a) for a in self.args))
        object.__setattr__(self, "attacks", tuple(self.attacks))
        object.__setattr__(
            self, "initializers", _freeze_initializers(self.initializers)
        )
        if not self.attacks:
            raise JobError("campaign job needs at least one attack spec")
        labels = [spec.default_label for spec in self.attacks]
        dupes = {label for label in labels if labels.count(label) > 1}
        if dupes:
            raise JobError(
                f"duplicate attack labels {sorted(dupes)}; disambiguate "
                f"with per-spec 'label'"
            )
        _decode_initializers(self.initializers)  # validate hex early

    # -- identity ---------------------------------------------------------
    def job_id(self) -> str:
        """Stable content hash; identical submissions share one id."""
        cached = self.__dict__.get("_job_id")
        if cached is None:
            from repro.toolchain.workbench import source_hash

            payload = {
                "v": JOB_SCHEMA_VERSION,
                "kind": self.kind,
                "source": source_hash(
                    self.source, _decode_initializers(self.initializers)
                ),
                "config": self.config.cache_key(),
                "function": self.function,
                "args": list(self.args),
                "attacks": [spec.to_dict() for spec in self.attacks],
            }
            digest = hashlib.sha256(_canonical_json(payload).encode())
            cached = f"cj-{digest.hexdigest()[:32]}"
            object.__setattr__(self, "_job_id", cached)
        return cached

    def shard_id(self, index: int) -> str:
        """Stable content hash of one attack shard of this job.

        The fleet protocol re-issues shards across workers; keying every
        shard (and its stored result) by content means a duplicate
        completion — a stolen lease's original worker finishing late, a
        retried HTTP POST — collapses onto the same row instead of
        corrupting the merge.
        """
        spec = self.attacks[index]
        payload = {
            "job": self.job_id(),
            "index": index,
            "attack": spec.to_dict(),
        }
        digest = hashlib.sha256(_canonical_json(payload).encode())
        return f"sh-{digest.hexdigest()[:32]}"

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": JOB_SCHEMA_VERSION,
            "kind": self.kind,
            "title": self.title,
            "source": self.source,
            "function": self.function,
            "args": list(self.args),
            "config": self.config.to_dict(),
            "attacks": [spec.to_dict() for spec in self.attacks],
            "initializers": [list(pair) for pair in self.initializers],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignJob":
        data = _check_envelope(data, cls.kind)
        try:
            config = CompileConfig.from_dict(data.get("config") or {})
        except ValueError as exc:
            raise JobError(f"bad config: {exc}") from exc
        return cls(
            source=data.get("source", ""),
            function=data.get("function", ""),
            args=tuple(data.get("args") or ()),
            config=config,
            attacks=tuple(
                AttackSpec.from_dict(spec) for spec in data.get("attacks") or ()
            ),
            initializers=tuple(
                tuple(pair) for pair in data.get("initializers") or ()
            ),
            title=data.get("title", ""),
        )

    # -- execution --------------------------------------------------------
    def execute(
        self,
        workbench,
        executor=None,
        emit: Optional[Callable[[dict], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        program=None,
    ) -> dict[str, Any]:
        """Run the campaign synchronously; returns the result payload.

        ``executor`` — an optional
        :class:`~repro.toolchain.executor.CampaignExecutor` owned
        exclusively by the calling runner slot (its ``on_batch`` hook is
        borrowed for the duration of each attack).  ``emit`` receives
        progress-event dicts; ``should_stop`` is polled between attacks
        and raises :class:`JobCancelled` when true.  ``program`` lets a
        caller that already compiled (e.g. to key a workload lock on the
        exact program object) pin the execution target; re-consulting the
        cache here could return a *different* object for the same job.
        """
        emit = emit or (lambda payload: None)
        if program is None:
            program = workbench.compile(
                self.source,
                self.config,
                initializers=_decode_initializers(self.initializers) or None,
            )
        report = CampaignReport(scheme=program.scheme)
        for index, spec in enumerate(self.attacks):
            if should_stop is not None and should_stop():
                raise JobCancelled(f"cancelled before attack {spec.suite!r}")
            emit(
                {
                    "event": "attack-started",
                    "attack": spec.default_label,
                    "suite": spec.suite,
                    "index": index,
                    "of": len(self.attacks),
                }
            )
            result = self._run_attack(program, spec, executor, emit)
            if spec.label and spec.label != result.attack:
                result = dataclasses.replace(result, attack=spec.label)
            report.attacks[result.attack] = result
            # Progress consumers only need the tallies; the per-trial
            # records (one row per trial) stay out of the event stream and
            # the persisted event log — they live once, in the result.
            event_result = attack_result_to_dict(result)
            event_result.pop("records", None)
            emit(
                {
                    "event": "attack-finished",
                    "attack": result.attack,
                    "index": index,
                    "of": len(self.attacks),
                    "result": event_result,
                }
            )
        return {
            "kind": self.kind,
            "job_id": self.job_id(),
            "scheme_revision": _scheme_revision(self.config),
            "report": report_to_dict(report),
        }

    def run_shard(
        self,
        workbench,
        index: int,
        executor=None,
        emit: Optional[Callable[[dict], None]] = None,
        program=None,
    ) -> dict[str, Any]:
        """Run one attack of this campaign — the unit of work a fleet
        worker leases.  Returns the shard payload the coordinator merges:
        ``{"shard", "attack", "index", "scheme", "result"}``.

        Shard execution is deterministic (fixed golden run, exhaustive
        fault spaces, a forking engine with per-trial recording), so two
        workers running the same shard produce byte-identical payloads —
        the property the fleet's idempotent result merge rests on; the
        engines themselves are result-identical, so a fork worker and a
        superblock worker can even share one campaign.
        """
        emit = emit or (lambda payload: None)
        spec = self.attacks[index]
        if program is None:
            program = workbench.compile(
                self.source,
                self.config,
                initializers=_decode_initializers(self.initializers) or None,
            )
        result = self._run_attack(program, spec, executor, emit)
        if spec.label and spec.label != result.attack:
            result = dataclasses.replace(result, attack=spec.label)
        return {
            "shard": self.shard_id(index),
            "attack": result.attack,
            "index": index,
            "scheme": program.scheme,
            "result": attack_result_to_dict(result),
        }

    def _run_attack(self, program, spec, executor, emit):
        attack_fn = ATTACK_SUITES[spec.suite]
        kwargs = dict(spec.kwargs)
        # operand-corruption's window is a (lo, hi) pair that JSON turned
        # into a list; the adversary suite's window is a plain int width.
        if isinstance(kwargs.get("window"), list):
            kwargs["window"] = tuple(kwargs["window"])
        if executor is None:
            return attack_fn(
                program,
                self.function,
                list(self.args),
                engine=default_engine(),
                record_trials=True,
                **kwargs,
            )

        def on_batch(done, total, trials_done, trial_count):
            emit(
                {
                    "event": "batch",
                    "attack": spec.default_label,
                    "batches_done": done,
                    "batch_count": total,
                    "trials_done": trials_done,
                    "trial_count": trial_count,
                }
            )

        executor.on_batch = on_batch
        try:
            return attack_fn(
                program,
                self.function,
                list(self.args),
                engine=default_engine(),
                executor=executor,
                record_trials=True,
                **kwargs,
            )
        finally:
            executor.on_batch = None


@dataclass(frozen=True)
class CompileJob:
    """Compile-only job: warm the service cache / inspect code metrics."""

    kind = "compile"

    source: str
    config: CompileConfig = field(default_factory=CompileConfig)
    initializers: tuple[tuple[str, str], ...] = ()
    title: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.source, str) or not self.source.strip():
            raise JobError("compile job needs non-empty MiniC source text")
        if not isinstance(self.config, CompileConfig):
            raise JobError(
                f"config must be a CompileConfig, got {type(self.config).__name__}"
            )
        object.__setattr__(
            self, "initializers", _freeze_initializers(self.initializers)
        )
        _decode_initializers(self.initializers)

    def job_id(self) -> str:
        cached = self.__dict__.get("_job_id")
        if cached is None:
            from repro.toolchain.workbench import source_hash

            payload = {
                "v": JOB_SCHEMA_VERSION,
                "kind": self.kind,
                "source": source_hash(
                    self.source, _decode_initializers(self.initializers)
                ),
                "config": self.config.cache_key(),
            }
            digest = hashlib.sha256(_canonical_json(payload).encode())
            cached = f"bj-{digest.hexdigest()[:32]}"
            object.__setattr__(self, "_job_id", cached)
        return cached

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": JOB_SCHEMA_VERSION,
            "kind": self.kind,
            "title": self.title,
            "source": self.source,
            "config": self.config.to_dict(),
            "initializers": [list(pair) for pair in self.initializers],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompileJob":
        data = _check_envelope(data, cls.kind)
        try:
            config = CompileConfig.from_dict(data.get("config") or {})
        except ValueError as exc:
            raise JobError(f"bad config: {exc}") from exc
        return cls(
            source=data.get("source", ""),
            config=config,
            initializers=tuple(
                tuple(pair) for pair in data.get("initializers") or ()
            ),
            title=data.get("title", ""),
        )

    def execute(
        self,
        workbench,
        executor=None,
        emit: Optional[Callable[[dict], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> dict[str, Any]:
        program = workbench.compile(
            self.source,
            self.config,
            initializers=_decode_initializers(self.initializers) or None,
        )
        return {
            "kind": self.kind,
            "job_id": self.job_id(),
            "scheme_revision": _scheme_revision(self.config),
            "scheme": program.scheme,
            "code_size": program.code_size,
            "functions": {
                name: program.size_of(name)
                for name in sorted(program.image.function_sizes)
            },
        }


def _scheme_revision(config: CompileConfig) -> int:
    """The current registration revision of the job's scheme.

    Job ids must stay stable across processes, so the revision cannot be
    part of the id (registration order is process-local); instead it is
    stamped into result payloads, and the scheduler's store-dedup layer
    re-executes when the stored revision no longer matches — mirroring
    how the Workbench cache key invalidates after
    ``register_scheme(replace=True)``.
    """
    from repro.toolchain.registry import get_scheme

    return get_scheme(config.scheme).revision


def _check_envelope(data: Any, kind: str) -> dict[str, Any]:
    if not isinstance(data, dict):
        raise JobError(f"job spec must be a JSON object, got {type(data).__name__}")
    version = data.get("version", JOB_SCHEMA_VERSION)
    if version != JOB_SCHEMA_VERSION:
        raise JobError(
            f"unsupported job version {version!r} (this service speaks "
            f"{JOB_SCHEMA_VERSION})"
        )
    if data.get("kind", kind) != kind:
        raise JobError(f"expected a {kind!r} job, got kind={data.get('kind')!r}")
    return data


_JOB_KINDS = {CampaignJob.kind: CampaignJob, CompileJob.kind: CompileJob}


def job_from_dict(data: dict[str, Any]):
    """Parse a job envelope into the right job class by ``kind``."""
    if not isinstance(data, dict):
        raise JobError(f"job spec must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind", CampaignJob.kind)
    job_cls = _JOB_KINDS.get(kind)
    if job_cls is None:
        raise JobError(f"unknown job kind {kind!r}; known: {sorted(_JOB_KINDS)}")
    return job_cls.from_dict(data)


# ---------------------------------------------------------------------------
# Result (de)serialisation — AttackResult / CampaignReport <-> JSON
# ---------------------------------------------------------------------------
def attack_result_to_dict(result: AttackResult) -> dict[str, Any]:
    payload = {
        "attack": result.attack,
        "outcomes": {
            outcome.value: count for outcome, count in result.outcomes.items()
        },
        "trials": result.trials,
        "wrong_codes": list(result.wrong_codes),
        "simulated_cycles": result.simulated_cycles,
    }
    if result.records is not None:
        # Per-trial [fire_index, outcome, exit_code] rows: what the
        # vulnerability maps of repro.analysis are rebuilt from.
        payload["records"] = [list(row) for row in result.records]
    return payload


def attack_result_from_dict(data: dict[str, Any]) -> AttackResult:
    from repro.faults.classify import Outcome

    records = data.get("records")
    return AttackResult(
        attack=data["attack"],
        outcomes={
            Outcome(value): count
            for value, count in (data.get("outcomes") or {}).items()
        },
        trials=data.get("trials", 0),
        wrong_codes=list(data.get("wrong_codes") or ()),
        simulated_cycles=data.get("simulated_cycles", 0),
        records=None if records is None else [list(row) for row in records],
    )


def report_to_dict(report: CampaignReport) -> dict[str, Any]:
    return {
        "scheme": report.scheme,
        "attacks": {
            label: attack_result_to_dict(result)
            for label, result in report.attacks.items()
        },
    }


def report_from_dict(data: dict[str, Any]) -> CampaignReport:
    report = CampaignReport(scheme=data["scheme"])
    for label, result in (data.get("attacks") or {}).items():
        report.attacks[label] = attack_result_from_dict(result)
    return report
