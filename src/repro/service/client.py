"""Blocking HTTP client for the campaign service (stdlib ``http.client``).

The client is deliberately synchronous — it serves the CLI, the test
suite, and :meth:`repro.toolchain.workbench.CampaignBuilder.run`
(``service=...``), all of which want a plain call-and-return API.  Each
request uses a fresh connection (the server closes after every response),
and :meth:`stream` consumes the NDJSON event feed line by line until the
server ends it.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator, Optional, Union


#: Events that end a job's stream.  The client stops reading at one of
#: these rather than waiting for EOF: the service's trial workers are
#: forked processes, and a worker forked while this connection was open
#: holds a duplicate of its file descriptor — the server closing its end
#: then never reads as EOF until that worker exits.
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})


class ServiceError(RuntimeError):
    """An HTTP-level or job-level service failure."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks to one ``repro.service`` HTTP endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731, timeout: float = 300.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    @classmethod
    def parse(cls, address: Union[str, "ServiceClient"], **kwargs) -> "ServiceClient":
        """Build a client from ``"host:port"`` (or ``"http://host:port"``)."""
        if isinstance(address, ServiceClient):
            return address
        address = address.removeprefix("http://").rstrip("/")
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"service address must look like 'host:port', got {address!r}"
            )
        return cls(host, int(port), **kwargs)

    def __repr__(self) -> str:
        return f"ServiceClient({self.host}:{self.port})"

    # -- plumbing ----------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                data = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    f"service returned non-JSON ({response.status}): {raw[:200]!r}"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"),
                    status=response.status,
                )
            return data
        finally:
            connection.close()

    # -- API ---------------------------------------------------------------
    def service_status(self) -> dict[str, Any]:
        return self._request("GET", "/status")

    def submit(self, job, priority: Optional[int] = None) -> dict[str, Any]:
        """Submit a job (a ``CampaignJob``/``CompileJob`` or its dict
        envelope); returns ``{"job_id", "deduplicated", "state"}``."""
        envelope = job.to_dict() if hasattr(job, "to_dict") else dict(job)
        payload: dict[str, Any] = {"job": envelope}
        if priority is not None:
            payload["priority"] = priority
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> list[dict[str, Any]]:
        path = "/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def results(self, job_id: str, wait: bool = False) -> dict[str, Any]:
        """The stored result payload; ``wait=True`` blocks until done."""
        path = f"/jobs/{job_id}/result" + ("?wait=1" if wait else "")
        return self._request("GET", path)["result"]

    def map(self, job_id: str) -> dict[str, Any]:
        """The finished job's per-instruction vulnerability map payload
        (``{"job_id", "kind", "map"}``; rebuild with
        ``VulnerabilityMap.from_dict(payload["map"])``)."""
        return self._request("GET", f"/jobs/{job_id}/map")

    def diff(self, job_a: str, job_b: str) -> dict[str, Any]:
        """Residual-vulnerability diff of two finished campaigns
        (``{"a", "b", "kind", "diff"}``; rebuild with
        ``SchemeDiff.from_dict(payload["diff"])``)."""
        return self._request("GET", f"/diff?a={job_a}&b={job_b}")

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's NDJSON progress events until it terminates."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.request("GET", f"/jobs/{job_id}/events")
                response = connection.getresponse()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            if response.status >= 400:
                raw = response.read()
                try:
                    error = json.loads(raw.decode()).get("error", raw.decode())
                except (UnicodeDecodeError, json.JSONDecodeError):
                    error = repr(raw[:200])
                raise ServiceError(error, status=response.status)
            for line in response:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode())
                yield event
                if event.get("event") in TERMINAL_EVENTS:
                    return
        finally:
            connection.close()

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job terminates; returns its final status.
        Raises :class:`ServiceError` if it failed or was cancelled."""
        for _ in self.stream(job_id):
            pass
        status = self.status(job_id)
        if status["state"] in ("failed", "cancelled"):
            raise ServiceError(
                f"job {job_id} {status['state']}"
                + (f": {status['error']}" if status.get("error") else "")
            )
        return status

    def run(self, job, priority: Optional[int] = None) -> dict[str, Any]:
        """Submit, wait, and fetch the result payload in one call."""
        submitted = self.submit(job, priority=priority)
        job_id = submitted["job_id"]
        self.wait(job_id)
        return self.results(job_id, wait=True)
