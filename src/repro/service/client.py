"""Blocking HTTP client for the campaign service (stdlib ``http.client``).

The client is deliberately synchronous — it serves the CLI, the test
suite, :meth:`repro.toolchain.workbench.CampaignBuilder.run`
(``service=...``), and the fleet's :class:`~repro.service.fleet.
FleetRunner`, all of which want a plain call-and-return API.  Each
request uses a fresh connection (the server closes after every
response).

Failure handling is explicit and bounded:

* **connect vs read timeouts** — a service that is down fails fast
  (``connect_timeout``, default 10 s) while a long-running streamed job
  may legitimately stay quiet for minutes (``timeout``); a hung socket
  can no longer block :meth:`stream` forever.
* **retry with exponential backoff + jitter** (:class:`RetryPolicy`) —
  transport errors and 503s are retried; every mutating endpoint the
  client talks to is idempotent (job and shard ids are content hashes),
  so a retried POST whose first response was lost is harmless.
* **Retry-After** — a 503's ``Retry-After`` header is surfaced on
  :class:`ServiceError` and honoured by the backoff loop.
* **stream resume** — :meth:`stream` reconnects after a mid-stream
  transport failure and skips the already-seen event prefix (the server
  replays a job's full event history to each new subscriber).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union


#: Events that end a job's stream.  The client stops reading at one of
#: these rather than waiting for EOF: the service's trial workers are
#: forked processes, and a worker forked while this connection was open
#: holds a duplicate of its file descriptor — the server closing its end
#: then never reads as EOF until that worker exits.
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})


class ServiceError(RuntimeError):
    """An HTTP-level or job-level service failure."""

    def __init__(
        self,
        message: str,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
        body: Optional[dict[str, Any]] = None,
    ):
        super().__init__(message)
        self.status = status
        #: Server-suggested delay (seconds) from a ``Retry-After`` header.
        self.retry_after = retry_after
        #: The full parsed JSON error payload, when the server sent one.
        #: ``str(exc)`` only carries its ``"error"`` field; structured
        #: context (``state``, ``fault_models``, ...) lives here.
        self.body = body


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient transport/503 failures.

    Delays run ``base_delay * multiplier**n`` capped at ``max_delay``,
    each stretched by up to ``jitter`` (fractional) so a fleet of
    runners hammered by the same outage does not retry in lockstep.
    ``seed`` pins the jitter stream for deterministic tests.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_statuses: tuple[int, ...] = (503,)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")

    def should_retry(self, error: ServiceError) -> bool:
        # status=None means the transport failed (refused, reset, timed
        # out) before any HTTP status arrived.
        return error.status is None or error.status in self.retry_statuses

    def delay(self, attempt: int, rng: random.Random) -> float:
        backoff = min(
            self.max_delay, self.base_delay * (self.multiplier ** attempt)
        )
        return backoff * (1.0 + self.jitter * rng.random())


#: Zero-retry policy: fail on the first error (used by tests asserting
#: on raw failures, and anywhere a caller runs its own retry loop).
NO_RETRY = RetryPolicy(attempts=1)


class ServiceClient:
    """Talks to one ``repro.service`` HTTP endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        timeout: float = 300.0,
        connect_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_timeout = (
            min(10.0, timeout) if connect_timeout is None else connect_timeout
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(self.retry.seed)

    @classmethod
    def parse(cls, address: Union[str, "ServiceClient"], **kwargs) -> "ServiceClient":
        """Build a client from ``"host:port"`` (or ``"http://host:port"``)."""
        if isinstance(address, ServiceClient):
            return address
        address = address.removeprefix("http://").rstrip("/")
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"service address must look like 'host:port', got {address!r}"
            )
        return cls(host, int(port), **kwargs)

    def __repr__(self) -> str:
        return f"ServiceClient({self.host}:{self.port})"

    # -- plumbing ----------------------------------------------------------
    def _connect(self, read_timeout: float) -> http.client.HTTPConnection:
        """Open a connection with the short connect timeout, then widen
        the socket to the (long) read timeout for the exchange itself."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        connection.connect()
        if connection.sock is not None:
            connection.sock.settimeout(read_timeout)
        return connection

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        """One API call with bounded retry-with-backoff on transient
        failures (see :class:`RetryPolicy`)."""
        for attempt in range(self.retry.attempts):
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                last = attempt == self.retry.attempts - 1
                if last or not self.retry.should_retry(exc):
                    raise
                delay = self.retry.delay(attempt, self._rng)
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                time.sleep(min(delay, self.retry.max_delay))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict[str, Any]:
        try:
            connection = self._connect(self.timeout)
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                data = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    f"service returned non-JSON ({response.status}): {raw[:200]!r}"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"),
                    status=response.status,
                    retry_after=_retry_after(response),
                    body=data if isinstance(data, dict) else None,
                )
            return data
        finally:
            connection.close()

    # -- API ---------------------------------------------------------------
    def service_status(self) -> dict[str, Any]:
        return self._request("GET", "/status")

    def submit(self, job, priority: Optional[int] = None) -> dict[str, Any]:
        """Submit a job (a ``CampaignJob``/``CompileJob`` or its dict
        envelope); returns ``{"job_id", "deduplicated", "state"}``.

        Safe to retry: job ids are content hashes, so a resubmission
        whose first ack was lost simply deduplicates."""
        envelope = job.to_dict() if hasattr(job, "to_dict") else dict(job)
        payload: dict[str, Any] = {"job": envelope}
        if priority is not None:
            payload["priority"] = priority
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> list[dict[str, Any]]:
        path = "/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def results(self, job_id: str, wait: bool = False) -> dict[str, Any]:
        """The stored result payload; ``wait=True`` blocks until done."""
        path = f"/jobs/{job_id}/result" + ("?wait=1" if wait else "")
        return self._request("GET", path)["result"]

    def map(self, job_id: str) -> dict[str, Any]:
        """The finished job's per-instruction vulnerability map payload
        (``{"job_id", "kind", "map"}``; rebuild with
        ``VulnerabilityMap.from_dict(payload["map"])``)."""
        return self._request("GET", f"/jobs/{job_id}/map")

    def diff(self, job_a: str, job_b: str) -> dict[str, Any]:
        """Residual-vulnerability diff of two finished campaigns
        (``{"a", "b", "kind", "diff"}``; rebuild with
        ``SchemeDiff.from_dict(payload["diff"])``)."""
        return self._request("GET", f"/diff?a={job_a}&b={job_b}")

    # -- fleet protocol ----------------------------------------------------
    def fleet_lease(
        self, worker: str, ttl: Optional[float] = None
    ) -> dict[str, Any]:
        """Ask the coordinator for one shard lease:
        ``{"shard": {...} | null, "retry_after": seconds}``."""
        payload: dict[str, Any] = {"worker": worker}
        if ttl is not None:
            payload["ttl"] = ttl
        return self._request("POST", "/fleet/lease", payload)

    def fleet_heartbeat(
        self,
        shard_id: str,
        worker: str,
        token: str,
        ttl: Optional[float] = None,
        metrics: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Renew a shard lease; ``{"valid": bool, ...}`` (``False`` means
        the lease was stolen — abandon the shard).  ``metrics`` carries a
        worker registry *delta* (:meth:`repro.obs.metrics.MetricsRegistry.
        delta`) for the coordinator to roll up; deltas make retried beats
        merge without double counting."""
        payload: dict[str, Any] = {"worker": worker, "token": token}
        if ttl is not None:
            payload["ttl"] = ttl
        if metrics is not None:
            payload["metrics"] = metrics
        return self._request(
            "POST", f"/fleet/shards/{shard_id}/heartbeat", payload
        )

    def fleet_result(
        self,
        shard_id: str,
        worker: str,
        token: Optional[str] = None,
        result: Optional[dict[str, Any]] = None,
        error: Optional[str] = None,
        fault_models: Optional[list[str]] = None,
    ) -> dict[str, Any]:
        """Post a shard's result payload — or a structured failure naming
        the in-flight fault models.  Idempotent: shard ids are content
        hashes, so retried/duplicate submissions collapse server-side."""
        payload: dict[str, Any] = {"worker": worker}
        if token is not None:
            payload["token"] = token
        if result is not None:
            payload["result"] = result
        if error is not None:
            payload["error"] = error
            payload["fault_models"] = list(fault_models or [])
        return self._request("POST", f"/fleet/shards/{shard_id}/result", payload)

    # -- observability -----------------------------------------------------
    def metrics(self) -> str:
        """The service's Prometheus text exposition (``GET /metrics``).

        Returns the raw scrape body — this endpoint serves
        ``text/plain``, not JSON, so it bypasses :meth:`_request` (with
        the same bounded retry on transient failures)."""
        for attempt in range(self.retry.attempts):
            try:
                return self._metrics_once()
            except ServiceError as exc:
                last = attempt == self.retry.attempts - 1
                if last or not self.retry.should_retry(exc):
                    raise
                delay = self.retry.delay(attempt, self._rng)
                if exc.retry_after is not None:
                    delay = max(delay, exc.retry_after)
                time.sleep(min(delay, self.retry.max_delay))
        raise AssertionError("unreachable")  # pragma: no cover

    def _metrics_once(self) -> str:
        try:
            connection = self._connect(self.timeout)
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            try:
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    f"HTTP {response.status}: {raw[:200]!r}",
                    status=response.status,
                    retry_after=_retry_after(response),
                )
            return raw.decode()
        finally:
            connection.close()

    def trace(self, job_id: str) -> list[dict[str, Any]]:
        """The job's span list (``GET /jobs/<id>/trace``) — live spans
        for a job still executing, the persisted trace once it's done."""
        return self._request("GET", f"/jobs/{job_id}/trace")["spans"]

    # -- streaming ---------------------------------------------------------
    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's NDJSON progress events until it terminates.

        Survives mid-stream transport failures: the server replays a
        job's full event history to every new subscriber, so on
        reconnect the already-delivered prefix is skipped and the stream
        resumes where it broke.  Consecutive failed reconnects are
        bounded by the retry policy."""
        seen = 0
        failures = 0
        while True:
            made_progress = False
            try:
                for event in self._stream_once(job_id, skip=seen):
                    seen += 1
                    made_progress = True
                    failures = 0
                    yield event
                    if event.get("event") in TERMINAL_EVENTS:
                        return
                return  # server ended the stream without a terminal event
            except ServiceError as exc:
                if exc.status is not None:
                    raise  # HTTP-level rejection (404 etc.), not weather
                failures += 1
                if failures >= self.retry.attempts and not made_progress:
                    raise
                time.sleep(
                    min(
                        self.retry.delay(failures - 1, self._rng),
                        self.retry.max_delay,
                    )
                )

    def _stream_once(self, job_id: str, skip: int = 0) -> Iterator[dict[str, Any]]:
        try:
            connection = self._connect(self.timeout)
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            try:
                connection.request("GET", f"/jobs/{job_id}/events")
                response = connection.getresponse()
            except (ConnectionError, OSError) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            if response.status >= 400:
                raw = response.read()
                body = None
                try:
                    body = json.loads(raw.decode())
                except (UnicodeDecodeError, json.JSONDecodeError):
                    error = repr(raw[:200])
                else:
                    # Keep the whole payload: a failed job's stream error
                    # carries structured context (state, fault models)
                    # beyond the one-line "error" message.
                    if isinstance(body, dict):
                        error = body.get("error", raw.decode())
                    else:
                        error, body = raw.decode(), None
                raise ServiceError(error, status=response.status, body=body)
            try:
                position = 0
                for line in response:
                    line = line.strip()
                    if not line:
                        continue
                    event = json.loads(line.decode())
                    position += 1
                    if position <= skip:
                        continue  # replayed prefix from before a reconnect
                    yield event
                    if event.get("event") in TERMINAL_EVENTS:
                        return
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"event stream for {job_id} broke mid-read: {exc}"
                ) from exc
        finally:
            connection.close()

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job terminates; returns its final status.
        Raises :class:`ServiceError` if it failed or was cancelled."""
        for _ in self.stream(job_id):
            pass
        status = self.status(job_id)
        if status["state"] in ("failed", "cancelled"):
            raise ServiceError(
                f"job {job_id} {status['state']}"
                + (f": {status['error']}" if status.get("error") else "")
            )
        return status

    def run(self, job, priority: Optional[int] = None) -> dict[str, Any]:
        """Submit, wait, and fetch the result payload in one call."""
        submitted = self.submit(job, priority=priority)
        job_id = submitted["job_id"]
        self.wait(job_id)
        return self.results(job_id, wait=True)


def _retry_after(response: http.client.HTTPResponse) -> Optional[float]:
    value = response.getheader("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
