"""Command-line front end: ``python -m repro.service <command>``.

Commands
--------
``serve``    run the service (store + scheduler + HTTP API) until ^C
``worker``   run a fleet worker that leases campaign shards from a
             running service (``--host/--port``) until ^C
``submit``   build a campaign job from a bundled program or source file
             and submit it (``--wait`` streams progress and prints the
             final tally)
``status``   service health, one job's status, or the recent job list
``top``      live terminal view: queue depth, runner utilisation, fleet
             shard states, trial throughput (``--once`` for one frame)
``results``  a finished job's merged outcome tally
``map``      a finished job's per-instruction vulnerability map
             (rendered; ``--json`` for the raw payload)
``diff``     residual-vulnerability diff of two finished jobs (same
             workload, two schemes)

Quickstart::

    python -m repro.service serve --port 8731 --db campaigns.sqlite &
    python -m repro.service submit --program integer_compare \\
        --function integer_compare --args 7,7 --scheme ancode \\
        --attack branch-flip:max_branches=8 --attack repeated-branch-flip \\
        --wait
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import ATTACK_SUITES, AttackSpec, CampaignJob, JobError

DEFAULT_PORT = 8731


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------
async def _serve(args: argparse.Namespace) -> int:
    from repro.service.http import ServiceServer
    from repro.service.queue import JobScheduler
    from repro.service.store import ResultStore

    store = ResultStore(args.db)
    # Phantom-RUNNING sweep: rows a dead coordinator left 'running' go
    # back to 'queued' before we serve (they resume below, or — with
    # --no-resume — at least report honestly as pending).
    recovered = store.recover_interrupted()
    scheduler = JobScheduler(
        store=store,
        runners=args.runners,
        trial_workers=args.trial_workers,
        lease_ttl=args.lease_ttl,
        observability=args.observability,
    )
    await scheduler.start()
    resumed = scheduler.resume_from_store() if args.resume else 0
    server = ServiceServer(scheduler, host=args.host, port=args.port)
    host, port = await server.start()
    print(
        f"repro.service listening on http://{host}:{port} "
        f"(db={args.db}, runners={args.runners}, "
        f"trial_workers={args.trial_workers}, lease_ttl={args.lease_ttl}s, "
        f"recovered {recovered}, resumed {resumed} job(s))",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
        await scheduler.close()
        store.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.jobs import set_default_engine

    set_default_engine(args.engine)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("\nrepro.service stopped", flush=True)
        return 0


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------
def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.fleet import FleetRunner
    from repro.service.jobs import set_default_engine

    set_default_engine(args.engine)

    runner = FleetRunner(
        f"{args.host}:{args.port}",
        worker_id=args.id,
        ttl=args.ttl,
        trial_workers=args.trial_workers,
    )
    print(
        f"fleet worker {runner.worker_id} leasing from "
        f"http://{args.host}:{args.port} (ttl={args.ttl}s, "
        f"trial_workers={args.trial_workers})",
        flush=True,
    )
    try:
        runner.run_forever(max_shards=args.max_shards)
    except KeyboardInterrupt:
        pass
    finally:
        runner.stop(join=False)
        print(
            f"\nfleet worker {runner.worker_id} stopped "
            f"({runner.shards_done} shard(s) done, "
            f"{runner.shards_failed} failed)",
            flush=True,
        )
    return 0


# ---------------------------------------------------------------------------
# submit
# ---------------------------------------------------------------------------
def parse_attack(spec: str) -> AttackSpec:
    """Parse ``suite[:key=value[,key=value...]]``.

    Values are JSON (ints, bools, ``[0;7]`` lists — semicolons stand in
    for commas inside lists so the option splitter stays simple), with a
    bare-string fallback.
    """
    import json as _json

    suite, _, rest = spec.partition(":")
    kwargs: dict[str, Any] = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise JobError(
                    f"bad attack option {item!r} in {spec!r}; expected key=value"
                )
            try:
                kwargs[key.strip()] = _json.loads(value.strip().replace(";", ","))
            except _json.JSONDecodeError:
                kwargs[key.strip()] = value.strip()
    return AttackSpec.make(suite.strip(), **kwargs)


def _build_job(args: argparse.Namespace) -> CampaignJob:
    from repro.toolchain.config import CompileConfig

    if bool(args.program) == bool(args.source):
        raise JobError("pass exactly one of --program NAME or --source FILE")
    if args.program:
        from repro.programs import load_source

        source = load_source(args.program)
        title = args.title or f"{args.program}/{args.scheme}"
    else:
        with open(args.source) as handle:
            source = handle.read()
        title = args.title or f"{args.source}/{args.scheme}"
    attacks = tuple(parse_attack(spec) for spec in args.attack) or (
        AttackSpec.make("branch-flip", max_branches=8),
        AttackSpec.make("repeated-branch-flip"),
    )
    workload_args = tuple(
        int(a) for a in args.args.split(",") if a.strip() != ""
    )
    return CampaignJob(
        source=source,
        function=args.function,
        args=workload_args,
        config=CompileConfig(
            scheme=args.scheme,
            cfi_policy=args.cfi_policy,
            target=args.target,
        ),
        attacks=attacks,
        title=title,
    )


def _print_tally(result: dict[str, Any], out=sys.stdout) -> None:
    report = result.get("report") or {}
    print(f"scheme: {report.get('scheme')}", file=out)
    for label, attack in (report.get("attacks") or {}).items():
        outcomes = ", ".join(
            f"{name}={count}"
            for name, count in sorted(attack.get("outcomes", {}).items())
        )
        print(
            f"  {label}: trials={attack.get('trials')} {outcomes}"
            + (
                f" wrong_codes={attack['wrong_codes']}"
                if attack.get("wrong_codes")
                else ""
            ),
            file=out,
        )


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    job = _build_job(args)
    submitted = client.submit(job, priority=args.priority)
    job_id = submitted["job_id"]
    if args.json and not args.wait:
        print(json.dumps(submitted))
        return 0
    if not args.wait:
        print(
            f"submitted {job_id} "
            f"({'deduplicated' if submitted['deduplicated'] else 'queued'})"
        )
        return 0
    for event in client.stream(job_id):
        kind = event.get("event")
        if kind == "attack-finished" and not args.json:
            attack = event["result"]
            print(
                f"[{job_id[:12]}] {attack['attack']}: "
                f"trials={attack['trials']} outcomes={attack['outcomes']}"
            )
        elif kind in ("failed", "cancelled") and not args.json:
            print(f"[{job_id[:12]}] {kind}: {event.get('error', '')}")
    status = client.status(job_id)
    if status["state"] != "done":
        print(f"job {job_id} ended {status['state']}: {status.get('error')}")
        return 1
    result = client.results(job_id)
    if args.json:
        print(json.dumps({"job_id": job_id, "result": result}))
    else:
        _print_tally(result)
    return 0


# ---------------------------------------------------------------------------
# status / results
# ---------------------------------------------------------------------------
def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.top import run_top

    client = ServiceClient(args.host, args.port)
    iterations = 1 if args.once else args.iterations
    return run_top(
        client,
        interval=args.interval,
        iterations=iterations,
        clear=not args.once and not args.no_clear,
    )


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    if args.job_id:
        payload: Any = client.status(args.job_id)
    elif args.list:
        payload = client.jobs(state=args.state)
    else:
        payload = client.service_status()
    print(json.dumps(payload, indent=None if args.json else 2))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    result = client.results(args.job_id, wait=args.wait)
    if args.json:
        print(json.dumps(result))
    elif result.get("kind") == "campaign":
        _print_tally(result)
    else:
        print(json.dumps(result, indent=2))
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    payload = client.map(args.job_id)
    if args.json:
        print(json.dumps(payload))
        return 0
    from repro.analysis import VulnerabilityMap, render_map

    vmap = VulnerabilityMap.from_dict(payload["map"])
    print(render_map(vmap, max_cells=args.max_cells))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    client = ServiceClient(args.host, args.port)
    payload = client.diff(args.job_a, args.job_b)
    if args.json:
        print(json.dumps(payload))
        return 0
    from repro.analysis import SchemeDiff, render_diff

    print(render_diff(SchemeDiff.from_dict(payload["diff"])))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Fault-campaign service: queue, execute, store, stream.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service until interrupted")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--db",
        default="repro-service.sqlite",
        help="persistent result store (':memory:' for ephemeral)",
    )
    serve.add_argument("--runners", type=int, default=2)
    serve.add_argument(
        "--trial-workers",
        type=int,
        default=0,
        help="processes per runner for trial sharding (0 = in-process)",
    )
    serve.add_argument(
        "--no-resume",
        dest="resume",
        action="store_false",
        help="do not re-enqueue jobs left queued/running in the store",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        dest="lease_ttl",
        help="fleet shard lease TTL in seconds (a worker silent this long "
        "loses its shard to work-stealing)",
    )
    serve.add_argument(
        "--no-observability",
        dest="observability",
        action="store_false",
        help="disable span tracing and trace persistence "
        "(/metrics and /status counters stay available)",
    )
    serve.add_argument(
        "--engine",
        choices=("fork", "superblock"),
        default="fork",
        help="trial engine for campaign execution (results are byte-identical; superblock compiles hot traces for throughput)",
    )
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run a fleet worker: lease campaign shards from a service",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=DEFAULT_PORT)
    worker.add_argument("--id", help="worker id (default: generated)")
    worker.add_argument(
        "--ttl",
        type=float,
        default=5.0,
        help="lease TTL this worker requests (heartbeats run at ttl/3)",
    )
    worker.add_argument(
        "--trial-workers",
        type=int,
        default=0,
        help="processes for trial sharding within each shard (0 = in-process)",
    )
    worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="exit after completing N shards (default: run until ^C)",
    )
    worker.add_argument(
        "--engine",
        choices=("fork", "superblock"),
        default="fork",
        help="trial engine for campaign execution (results are byte-identical; superblock compiles hot traces for throughput)",
    )
    worker.set_defaults(func=_cmd_worker)

    submit = sub.add_parser("submit", help="submit a campaign job")
    _add_endpoint_args(submit)
    submit.add_argument("--program", help="bundled device program name")
    submit.add_argument("--source", help="MiniC source file")
    submit.add_argument("--function", required=True, help="workload entry point")
    submit.add_argument("--args", default="", help="comma-separated int args")
    submit.add_argument("--scheme", default="ancode")
    submit.add_argument(
        "--target",
        default="baseline",
        help="machine target (see repro.target; e.g. baseline, rv32)",
    )
    submit.add_argument("--cfi-policy", default="merge", dest="cfi_policy")
    submit.add_argument(
        "--attack",
        action="append",
        default=[],
        metavar="SUITE[:k=v,...]",
        help=f"attack suite ({', '.join(sorted(ATTACK_SUITES))}); repeatable. "
        f"Default: branch-flip:max_branches=8 + repeated-branch-flip",
    )
    submit.add_argument("--title", default="")
    submit.add_argument("--priority", type=int, default=None)
    submit.add_argument(
        "--wait", action="store_true", help="stream progress and print the tally"
    )
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="service, job, or job-list status")
    _add_endpoint_args(status)
    status.add_argument("job_id", nargs="?", help="job id (omit for service)")
    status.add_argument("--list", action="store_true", help="list recent jobs")
    status.add_argument("--state", help="filter --list by state")
    status.set_defaults(func=_cmd_status)

    top = sub.add_parser(
        "top", help="live terminal view of queue, fleet, and throughput"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=DEFAULT_PORT)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (throughput is the counter delta "
        "across this window)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: run until ^C)",
    )
    top.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place",
    )
    top.set_defaults(func=_cmd_top)

    results = sub.add_parser("results", help="fetch a job's stored result")
    _add_endpoint_args(results)
    results.add_argument("job_id")
    results.add_argument(
        "--wait", action="store_true", help="block until the job finishes"
    )
    results.set_defaults(func=_cmd_results)

    map_cmd = sub.add_parser(
        "map", help="per-instruction vulnerability map of a finished job"
    )
    _add_endpoint_args(map_cmd)
    map_cmd.add_argument("job_id")
    map_cmd.add_argument(
        "--max-cells",
        type=int,
        default=40,
        help="truncate the rendered table to N instructions (JSON is never truncated)",
    )
    map_cmd.set_defaults(func=_cmd_map)

    diff_cmd = sub.add_parser(
        "diff", help="residual-vulnerability diff of two finished jobs"
    )
    _add_endpoint_args(diff_cmd)
    diff_cmd.add_argument("job_a", help="job id of scheme A")
    diff_cmd.add_argument("job_b", help="job id of scheme B")
    diff_cmd.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (JobError, ServiceError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
