"""Deterministic fault injection for the campaign service itself.

:mod:`repro.faults` attacks the *device under test*; this module turns
the same adversarial mindset on our own serving infrastructure.  Every
injector runs off a seeded schedule so a chaos test is an ordinary
deterministic test — same seed, same faults, same (correct) outcome:

* :class:`WorkerChaos` — kills a :class:`~repro.service.fleet.FleetRunner`
  mid-shard: at scheduled lease ordinals the runner goes silent while
  still holding its lease, exactly what a SIGKILLed worker box looks
  like from the coordinator (no heartbeat, no result, lease expires,
  shard is stolen).
* :class:`ChaosProxy` — a TCP proxy between client/runner and service
  that drops, delays, or duplicates HTTP exchanges.  A *dropped*
  response is the nasty case: the request **was** executed server-side,
  only the acknowledgement is lost — which is why every mutating call in
  the fleet protocol must be idempotent.
* :class:`CrashingStore` — a :class:`~repro.service.store.ResultStore`
  that dies (raises :class:`SimulatedCrash`) after a scheduled number of
  committed writes, simulating a coordinator killed between WAL commits;
  reopening the same database file must resume from the shards that made
  it to disk.

None of this is imported by the service's production paths — the test
suite and the chaos CI job wire the injectors in explicitly.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.service.store import ResultStore

#: Every decision a :class:`ChaosSchedule` can draw (the label space of
#: ``repro_chaos_decisions_total``).
CHAOS_ACTIONS = ("pass", "drop", "delay", "duplicate")


class SimulatedCrash(RuntimeError):
    """The chaos harness killed a component on schedule (not a bug)."""


# ---------------------------------------------------------------------------
# Worker kills
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerChaos:
    """Schedule of lease ordinals (1-based) at which a runner dies.

    ``WorkerChaos(die_on_lease={1})`` kills the worker while it holds its
    first lease; the coordinator must steal the shard and the campaign
    must still finish byte-identically.
    """

    die_on_lease: frozenset[int] = frozenset()

    def __init__(self, die_on_lease=()):
        object.__setattr__(self, "die_on_lease", frozenset(die_on_lease))

    def should_die(self, lease_ordinal: int) -> bool:
        return lease_ordinal in self.die_on_lease


# ---------------------------------------------------------------------------
# Network faults
# ---------------------------------------------------------------------------
@dataclass
class ChaosSchedule:
    """Seeded per-exchange fault plan for :class:`ChaosProxy`.

    Each mutating exchange draws one decision from a private
    ``random.Random(seed)`` stream: *drop* the response (the upstream
    still executed it), *delay* it, *duplicate* the whole request (the
    upstream executes it twice), or pass it through.  Rates are
    probabilities in ``[0, 1]``; same seed ⇒ same decision sequence.
    """

    seed: int = 0
    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    delay_seconds: float = 0.05
    #: Registry the decision counters live in
    #: (``repro_chaos_decisions_total{action=...}``).  Inject the
    #: service's registry to surface chaos decisions on its ``/metrics``
    #: scrape; by default each schedule gets a private one.
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        total = self.drop + self.delay + self.duplicate
        if total > 1.0:
            raise ValueError(f"chaos rates sum to {total} > 1")
        if self.registry is None:
            self.registry = MetricsRegistry()
        for action in CHAOS_ACTIONS:  # pre-create: counts always has all keys
            self._series(action)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def _series(self, action: str):
        return self.registry.counter(
            "repro_chaos_decisions_total", labels={"action": action}
        )

    @property
    def counts(self) -> dict[str, int]:
        """Decision counters, by action name (a read-only view of the
        ``repro_chaos_decisions_total`` series)."""
        return {action: self._series(action).value for action in CHAOS_ACTIONS}

    def next_action(self) -> tuple[str, float]:
        """The next scheduled action: ``(name, delay_seconds)``."""
        with self._lock:
            draw = self._rng.random()
            if draw < self.drop:
                action = "drop"
            elif draw < self.drop + self.delay:
                action = "delay"
            elif draw < self.drop + self.delay + self.duplicate:
                action = "duplicate"
            else:
                action = "pass"
            self._series(action).inc()
        return action, (self.delay_seconds if action == "delay" else 0.0)


class ChaosProxy:
    """A faulty network between an HTTP client and the service.

    Listens on its own port and forwards each connection's single HTTP
    exchange to ``(upstream_host, upstream_port)``.  Chaos applies only
    to **POST** exchanges (the mutating fleet/submit calls whose
    idempotence is under test); GETs — including the long-lived NDJSON
    event streams — pass through untouched, so the proxy never has to
    guess where a stream ends.

    Point a :class:`~repro.service.client.ServiceClient` or
    :class:`~repro.service.fleet.FleetRunner` at :attr:`address` and the
    retry/backoff/idempotence machinery is exercised for real.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: Optional[ChaosSchedule] = None,
        host: str = "127.0.0.1",
    ):
        self.upstream = (upstream_host, upstream_port)
        self.schedule = schedule or ChaosSchedule()
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-proxy", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._stop.set()
        self._accept_thread.join(timeout=5)
        self._listener.close()
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- plumbing ----------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle, args=(client,), daemon=True
            )
            thread.start()
            self._threads.append(thread)
            if len(self._threads) > 64:
                self._threads = [t for t in self._threads if t.is_alive()]

    def _handle(self, client: socket.socket) -> None:
        try:
            with client:
                client.settimeout(10.0)
                request = _read_http_message(client)
                if request is None:
                    return
                action, delay = ("pass", 0.0)
                if request.split(b" ", 1)[0] == b"POST":
                    action, delay = self.schedule.next_action()
                if delay:
                    time.sleep(delay)
                if action == "duplicate":
                    # The retried-POST scenario: upstream executes the
                    # exchange twice, the client sees only the second ack.
                    _exchange_discard(self.upstream, request)
                upstream = socket.create_connection(self.upstream, timeout=30.0)
                with upstream:
                    upstream.sendall(request)
                    if action == "drop":
                        # Let the upstream finish (side effects happen!)
                        # but never deliver its response.
                        _drain(upstream)
                        return
                    _relay(upstream, client)
        except OSError:
            pass  # a torn connection is exactly the weather we simulate


def _read_http_message(sock: socket.socket) -> Optional[bytes]:
    """One HTTP/1.x request (headers + Content-Length body), raw."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data or None
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip() or 0)
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


def _relay(source: socket.socket, sink: socket.socket) -> None:
    while True:
        chunk = source.recv(65536)
        if not chunk:
            return
        sink.sendall(chunk)


def _drain(sock: socket.socket) -> None:
    while sock.recv(65536):
        pass


def _exchange_discard(upstream: tuple[str, int], request: bytes) -> None:
    with socket.create_connection(upstream, timeout=30.0) as sock:
        sock.sendall(request)
        _drain(sock)


# ---------------------------------------------------------------------------
# Store crashes
# ---------------------------------------------------------------------------
class CrashingStore(ResultStore):
    """A result store that dies after ``crash_after`` committed writes.

    The crash fires *before* the fatal write commits — the classic
    killed-between-WAL-commits window.  Once crashed, every further
    write raises too (the process is "dead"); reads keep working so the
    test can inspect what made it to disk.  Recovery is exercised by
    opening a fresh :class:`ResultStore` on the same ``path``.
    """

    def __init__(self, path, crash_after: int, **kwargs: Any):
        super().__init__(path, **kwargs)
        self.crash_after = crash_after
        self.writes = 0
        self.crashed = False
        self._chaos_lock = threading.Lock()

    def _maybe_crash(self, op: str) -> None:
        with self._chaos_lock:
            if self.crashed or self.writes >= self.crash_after:
                self.crashed = True
                raise SimulatedCrash(
                    f"store killed before write #{self.writes + 1} ({op}) "
                    f"committed"
                )
            self.writes += 1

    def record_job(self, *args: Any, **kwargs: Any):
        self._maybe_crash("record_job")
        return super().record_job(*args, **kwargs)

    def set_state(self, *args: Any, **kwargs: Any):
        self._maybe_crash("set_state")
        return super().set_state(*args, **kwargs)

    def append_event(self, *args: Any, **kwargs: Any):
        self._maybe_crash("append_event")
        return super().append_event(*args, **kwargs)

    def store_shard(self, *args: Any, **kwargs: Any):
        self._maybe_crash("store_shard")
        return super().store_shard(*args, **kwargs)

    def store_result(self, *args: Any, **kwargs: Any):
        self._maybe_crash("store_result")
        return super().store_result(*args, **kwargs)
