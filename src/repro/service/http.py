"""Streaming HTTP API for the campaign service (stdlib asyncio only).

A deliberately small HTTP/1.0-style server on ``asyncio.start_server``
(no web framework — the container ships none):

==========  =============================  =====================================
Method      Path                           Meaning
==========  =============================  =====================================
``GET``     ``/status``                    service health: version, schemes, targets,
                                           queue stats, job counts
``POST``    ``/jobs``                      submit a job (JSON body: the job
                                           envelope, optionally ``{"job": ...,
                                           "priority": N}``) -> 202
``GET``     ``/jobs``                      recent jobs (``?state=`` filter)
``GET``     ``/jobs/<id>``                 one job's status
``DELETE``  ``/jobs/<id>``                 cancel (queued: immediate; running:
                                           next attack boundary)
``GET``     ``/jobs/<id>/events``          **NDJSON stream** — replay of past
                                           events, then live per-attack and
                                           per-batch progress until terminal
``GET``     ``/jobs/<id>/result``          result payload (``?wait=1`` blocks
                                           until the job finishes)
``GET``     ``/jobs/<id>/map``             per-instruction vulnerability map
                                           built from the stored result
                                           (:mod:`repro.analysis`)
``GET``     ``/jobs/<id>/trace``           the job's span tree (live while it
                                           runs, persisted once terminal)
``GET``     ``/metrics``                   Prometheus text exposition of every
                                           registry series (text/plain)
``GET``     ``/diff?a=<id>&b=<id>``        residual-vulnerability diff of two
                                           finished campaigns (same workload,
                                           two schemes)
``POST``    ``/fleet/lease``               lease one campaign shard to a fleet
                                           worker (``{"worker", "ttl"}`` ->
                                           ``{"shard", "retry_after"}``)
``POST``    ``/fleet/shards/<id>/``        renew a shard lease (``{"worker",
            ``heartbeat``                  "token", "ttl"}``)
``POST``    ``/fleet/shards/<id>/result``  post a shard's result payload (or a
                                           structured failure); idempotent
==========  =============================  =====================================

A shutting-down scheduler answers mutating requests with ``503`` and a
``Retry-After`` header instead of accepting doomed work.

Every response carries ``Connection: close``; the event stream has no
``Content-Length`` and simply ends when the job does, which lets any
line-oriented client (``curl``, ``http.client``) consume it.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

import repro
from repro.analysis.vulnmap import AnalysisError
from repro.service.jobs import JobError, job_from_dict
from repro.service.queue import PRIORITY_DEFAULT, JobScheduler, UnknownJobError
from repro.service.store import ResultStore

#: Largest accepted request body (sources + device images are small).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """The asyncio HTTP front end over one :class:`JobScheduler`."""

    def __init__(
        self, scheduler: JobScheduler, host: str = "127.0.0.1", port: int = 0
    ):
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the (host, port) actually bound
        (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._route(writer, *request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            try:
                await self._respond(writer, 500, {"error": f"{type(exc).__name__}: {exc}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise JobError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # -- routing -----------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            if parts == ["status"] and method == "GET":
                await self._respond(writer, 200, self._service_status())
            elif parts == ["metrics"] and method == "GET":
                await self._metrics(writer)
            elif parts == ["jobs"] and method == "POST":
                if await self._unavailable(writer):
                    return
                await self._submit(writer, body)
            elif parts == ["fleet", "lease"] and method == "POST":
                if await self._unavailable(writer):
                    return
                await self._fleet_lease(writer, body)
            elif (
                len(parts) == 4
                and parts[:2] == ["fleet", "shards"]
                and parts[3] == "heartbeat"
                and method == "POST"
            ):
                await self._fleet_heartbeat(writer, parts[2], body)
            elif (
                len(parts) == 4
                and parts[:2] == ["fleet", "shards"]
                and parts[3] == "result"
                and method == "POST"
            ):
                await self._fleet_result(writer, parts[2], body)
            elif parts == ["jobs"] and method == "GET":
                jobs = self.scheduler.store.list_jobs(state=query.get("state"))
                await self._respond(
                    writer, 200, {"jobs": [r.to_dict() for r in jobs]}
                )
            elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
                await self._respond(writer, 200, self.scheduler.status(parts[1]))
            elif len(parts) == 2 and parts[0] == "jobs" and method == "DELETE":
                await self._respond(writer, 200, self.scheduler.cancel(parts[1]))
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "events"
                and method == "GET"
            ):
                await self._stream_events(writer, parts[1])
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "result"
                and method == "GET"
            ):
                await self._result(writer, parts[1], wait="wait" in query)
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "map"
                and method == "GET"
            ):
                await self._map(writer, parts[1])
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "trace"
                and method == "GET"
            ):
                await self._trace(writer, parts[1])
            elif parts == ["diff"] and method == "GET":
                await self._diff(writer, query)
            else:
                await self._respond(
                    writer, 404, {"error": f"no route for {method} {url.path}"}
                )
        except UnknownJobError as exc:
            await self._respond(writer, 404, {"error": f"unknown job {exc.args[0]}"})
        except JobError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
        except AnalysisError as exc:
            await self._respond(writer, 400, {"error": str(exc)})

    def _service_status(self) -> dict[str, Any]:
        from repro.spec import PREDICTORS, SpecConfig
        from repro.target import list_targets
        from repro.toolchain.registry import list_schemes

        workbench = self.scheduler.workbench
        return {
            "service": "repro.service",
            "version": repro.__version__,
            "schemes": list(list_schemes()),
            "targets": list(list_targets()),
            "speculation": {
                "suite": "speculative",
                "predictors": sorted(PREDICTORS),
                "defaults": SpecConfig().to_dict(),
            },
            "runners": self.scheduler.runners,
            "trial_workers": self.scheduler.trial_workers,
            "queue": self.scheduler.stats.to_dict(),
            "fleet": self.scheduler.fleet.status(),
            "jobs": self.scheduler.store.counts(),
            "compile_cache": {
                "hits": workbench.hits,
                "misses": workbench.misses,
                "programs": workbench.cached_programs,
            },
            "observability": self.scheduler.observability_status(),
        }

    async def _metrics(self, writer: asyncio.StreamWriter) -> None:
        scheduler = self.scheduler
        loop = asyncio.get_running_loop()
        # Off-loop: collect() polls the fleet coordinator (its lock is
        # also taken by runner threads) and the store.
        text = await loop.run_in_executor(
            None, lambda: scheduler.collect().render_prometheus()
        )
        await self._respond_text(writer, 200, text)

    async def _trace(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        spans = self.scheduler.trace(job_id)  # raises 404 if unknown
        if spans is None:
            status = self.scheduler.status(job_id)
            await self._respond(
                writer,
                409,
                {
                    "error": f"job {job_id} has no recorded trace "
                    f"(observability disabled, or a pre-tracing row)",
                    "state": status["state"],
                },
            )
            return
        await self._respond(writer, 200, {"job_id": job_id, "spans": spans})

    async def _unavailable(self, writer: asyncio.StreamWriter) -> bool:
        """503 + Retry-After when the scheduler is shutting down."""
        if not self.scheduler.closed:
            return False
        await self._respond(
            writer,
            503,
            {"error": "service is shutting down; retry shortly"},
            headers={"Retry-After": "1"},
        )
        return True

    @staticmethod
    def _json_body(body: bytes) -> dict[str, Any]:
        try:
            data = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise JobError("request body must be a JSON object")
        return data

    # -- fleet endpoints ---------------------------------------------------
    async def _fleet_lease(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        data = self._json_body(body)
        worker = data.get("worker")
        if not isinstance(worker, str) or not worker:
            raise JobError("fleet lease needs a 'worker' id")
        fleet = self.scheduler.fleet
        loop = asyncio.get_running_loop()
        # Off-loop: the coordinator lock is also taken by runner threads
        # executing local shards; never let it stall the event loop.
        shard = await loop.run_in_executor(
            None, fleet.lease, worker, data.get("ttl")
        )
        await self._respond(
            writer,
            200,
            {
                "shard": shard,
                # Empty pool: suggest a poll cadence well inside the
                # lease TTL so workers notice new work promptly.
                "retry_after": 0.0 if shard else min(0.2, fleet.lease_ttl / 4),
            },
        )

    async def _fleet_heartbeat(
        self, writer: asyncio.StreamWriter, shard_id: str, body: bytes
    ) -> None:
        data = self._json_body(body)
        metrics = data.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            raise JobError("heartbeat 'metrics' must be an object")
        fleet = self.scheduler.fleet
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(
            None,
            lambda: fleet.heartbeat(
                shard_id,
                str(data.get("worker") or ""),
                str(data.get("token") or ""),
                data.get("ttl"),
                metrics=metrics,
            ),
        )
        await self._respond(writer, 200, payload)

    async def _fleet_result(
        self, writer: asyncio.StreamWriter, shard_id: str, body: bytes
    ) -> None:
        data = self._json_body(body)
        result = data.get("result")
        error = data.get("error")
        if result is None and error is None:
            raise JobError("shard result needs 'result' or 'error'")
        if result is not None and not isinstance(result, dict):
            raise JobError("shard 'result' must be an object")
        fleet = self.scheduler.fleet
        loop = asyncio.get_running_loop()
        # Off-loop: accepting a result persists the shard synchronously
        # (durability before the ack) — a store write must not block
        # lease/heartbeat traffic on the event loop.
        ack = await loop.run_in_executor(
            None,
            lambda: fleet.submit_result(
                shard_id,
                str(data.get("worker") or ""),
                payload=result,
                token=data.get("token"),
                error=error,
                fault_models=data.get("fault_models"),
            ),
        )
        await self._respond(writer, 200, ack)

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        data = self._json_body(body)
        envelope = data.get("job", data)
        priority = data.get("priority", PRIORITY_DEFAULT)
        if not isinstance(priority, int):
            raise JobError(f"priority must be an int, got {priority!r}")
        job = job_from_dict(envelope)
        job_id, deduplicated = self.scheduler.submit(job, priority=priority)
        await self._respond(
            writer,
            202,
            {
                "job_id": job_id,
                "deduplicated": deduplicated,
                "state": self.scheduler.status(job_id)["state"],
            },
        )

    async def _result(
        self, writer: asyncio.StreamWriter, job_id: str, wait: bool
    ) -> None:
        if wait:
            payload = await self.scheduler.result(job_id)
        else:
            payload = self.scheduler.store.get_result(job_id)
            if payload is None:
                status = self.scheduler.status(job_id)  # raises 404 if unknown
                await self._respond(
                    writer,
                    409,
                    {
                        "error": f"job {job_id} is {status['state']}; "
                        f"retry with ?wait=1 or after completion",
                        "state": status["state"],
                    },
                )
                return
        await self._respond(
            writer, 200, {"job_id": job_id, "state": "done", "result": payload}
        )

    async def _finished_or_409(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> bool:
        """True when the job has a stored result; otherwise answers 409
        (or raises :class:`UnknownJobError` for a 404)."""
        if self.scheduler.store.has_result(job_id):
            return True
        status = self.scheduler.status(job_id)  # raises 404 if unknown
        await self._respond(
            writer,
            409,
            {
                "error": f"job {job_id} is {status['state']}; analysis "
                f"needs a finished campaign",
                "state": status["state"],
            },
        )
        return False

    async def _map(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        if not await self._finished_or_409(writer, job_id):
            return
        payload = await self.scheduler.vulnerability_map(job_id)
        await self._respond(writer, 200, payload)

    async def _diff(
        self, writer: asyncio.StreamWriter, query: dict[str, str]
    ) -> None:
        job_a, job_b = query.get("a"), query.get("b")
        if not job_a or not job_b:
            raise JobError("diff needs ?a=<job_id>&b=<job_id>")
        for job_id in (job_a, job_b):
            if not await self._finished_or_409(writer, job_id):
                return
        payload = await self.scheduler.scheme_diff(job_a, job_b)
        await self._respond(writer, 200, payload)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        # Validate before committing to a 200 streaming header.
        events = self.scheduler.events(job_id)
        first = await anext(events, None)  # raises UnknownJobError if unknown
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        if first is not None:
            writer.write(json.dumps(first).encode() + b"\n")
            await writer.drain()
            async for event in events:
                writer.write(json.dumps(event).encode() + b"\n")
                await writer.drain()

    @staticmethod
    async def _respond_text(
        writer: asyncio.StreamWriter, status: int, text: str
    ) -> None:
        """Plain-text response (the Prometheus exposition format is
        ``text/plain``, not JSON)."""
        body = text.encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()


class BackgroundService:
    """A whole service (store + scheduler + HTTP server) on a private
    event-loop thread — the one-liner tests, examples, and notebooks use::

        with BackgroundService(db_path="campaigns.sqlite") as service:
            report = workbench.campaign(src, "f", [1]).attack(...).run(
                service=service.address_str
            )
    """

    def __init__(
        self,
        db_path: str = ":memory:",
        runners: int = 2,
        trial_workers: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        resume: bool = True,
        lease_ttl: float = 10.0,
        observability: bool = True,
    ):
        self.db_path = db_path
        self.runners = runners
        self.trial_workers = trial_workers
        self.host = host
        self.port = port
        self.resume = resume
        self.lease_ttl = lease_ttl
        self.observability = observability
        self.scheduler: Optional[JobScheduler] = None
        self.resumed_jobs = 0
        #: Phantom 'running' rows swept back to 'queued' at startup.
        self.recovered_jobs = 0
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- context manager ---------------------------------------------------
    def __enter__(self) -> "BackgroundService":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    # -- conveniences ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def address_str(self) -> str:
        return f"{self.host}:{self.port}"

    def client(self, timeout: float = 300.0, **kwargs):
        from repro.service.client import ServiceClient

        return ServiceClient(self.host, self.port, timeout=timeout, **kwargs)

    @property
    def fleet(self):
        """The scheduler's :class:`~repro.service.fleet.FleetCoordinator`."""
        assert self.scheduler is not None, "service not started"
        return self.scheduler.fleet

    # -- loop thread -------------------------------------------------------
    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced via __enter__
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        store = ResultStore(self.db_path)
        # Startup sweep *before* serving: a coordinator killed between
        # the ledger insert and its first event leaves phantom 'running'
        # rows — reset them to 'queued' so they resume as PENDING (and
        # never surface as running work nobody is doing).
        self.recovered_jobs = store.recover_interrupted()
        self.scheduler = JobScheduler(
            store=store,
            runners=self.runners,
            trial_workers=self.trial_workers,
            lease_ttl=self.lease_ttl,
            observability=self.observability,
        )
        await self.scheduler.start()
        if self.resume:
            self.resumed_jobs = self.scheduler.resume_from_store()
        server = ServiceServer(self.scheduler, host=self.host, port=self.port)
        self.host, self.port = await server.start()
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
            await self.scheduler.close()
            store.close()
