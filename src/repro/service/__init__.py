"""Campaign-as-a-service: async job queue, persistent results, HTTP API.

The serving tier over the compile/attack stack (S13):

* :mod:`repro.service.jobs` — frozen, serialisable job specs
  (:class:`CampaignJob` / :class:`CompileJob`) with stable content-hash
  job ids and named attack suites;
* :mod:`repro.service.queue` — prioritised asyncio scheduler
  (:class:`JobScheduler`): dedup in flight / via the store / via the
  Workbench compile cache, bounded runner concurrency, per-batch
  progress events, cancellation;
* :mod:`repro.service.store` — SQLite :class:`ResultStore` with schema
  versioning; finished campaigns survive restarts and are never
  re-executed;
* :mod:`repro.service.http` — streaming stdlib HTTP API
  (:class:`ServiceServer`, NDJSON progress) plus the
  :class:`BackgroundService` thread harness;
* :mod:`repro.service.client` — blocking :class:`ServiceClient`
  (``submit``/``status``/``stream``/``results``) with connect/read
  timeouts and bounded retry-with-backoff (:class:`RetryPolicy`), the
  transport behind ``CampaignBuilder.run(service=...)``;
* :mod:`repro.service.fleet` — the distributed worker fleet:
  :class:`FleetCoordinator` (leased shards, heartbeat expiry,
  work-stealing, idempotent content-keyed results, local degradation)
  and :class:`FleetRunner` (the worker loop behind ``python -m
  repro.service worker``);
* :mod:`repro.service.chaos` — deterministic fault injection for the
  service itself (:class:`WorkerChaos`, :class:`ChaosProxy`,
  :class:`CrashingStore`), used by the resilience test suite and the
  chaos CI job;
* :mod:`repro.service.top` — the live terminal view behind ``python -m
  repro.service top`` (:func:`render_top` is pure and unit-testable);
* :mod:`repro.service.cli` — ``python -m repro.service
  serve|worker|submit|status|results|top``.

Observability (:mod:`repro.obs`) threads through the whole tier: the
scheduler owns a :class:`~repro.obs.metrics.MetricsRegistry` shared with
the fleet coordinator, serves it on ``GET /metrics``, and records one
span trace per job (``GET /jobs/<id>/trace``) — see
``docs/observability.md``.

Submodules load lazily (PEP 562): importing :mod:`repro.service` itself
does not pull in the compiler stack or the simulator.
"""

from __future__ import annotations

_EXPORTS = {
    "ATTACK_SUITES": "repro.service.jobs",
    "AttackSpec": "repro.service.jobs",
    "CampaignJob": "repro.service.jobs",
    "CompileJob": "repro.service.jobs",
    "JobError": "repro.service.jobs",
    "job_from_dict": "repro.service.jobs",
    "report_from_dict": "repro.service.jobs",
    "report_to_dict": "repro.service.jobs",
    "ResultStore": "repro.service.store",
    "SchemaMismatchError": "repro.service.store",
    "StoreError": "repro.service.store",
    "JobScheduler": "repro.service.queue",
    "UnknownJobError": "repro.service.queue",
    "BackgroundService": "repro.service.http",
    "ServiceServer": "repro.service.http",
    "ServiceClient": "repro.service.client",
    "ServiceError": "repro.service.client",
    "RetryPolicy": "repro.service.client",
    "FleetCoordinator": "repro.service.fleet",
    "FleetRunner": "repro.service.fleet",
    "FleetStats": "repro.service.fleet",
    "ChaosProxy": "repro.service.chaos",
    "ChaosSchedule": "repro.service.chaos",
    "CrashingStore": "repro.service.chaos",
    "SimulatedCrash": "repro.service.chaos",
    "WorkerChaos": "repro.service.chaos",
    "render_top": "repro.service.top",
    "run_top": "repro.service.top",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
