"""Prioritised asyncio job scheduler for the campaign service.

The scheduler owns three layers of deduplication (cheapest first):

1. **in flight** — a second submission of a job id already queued or
   running attaches to the same :class:`JobHandle`;
2. **persistent store** — a job id with a stored result is answered from
   :class:`~repro.service.store.ResultStore` without executing a trial;
3. **compile cache** — distinct jobs over the same (source, config) pair
   share one compilation through the
   :class:`~repro.toolchain.workbench.Workbench` LRU.

Execution: ``runners`` asyncio runner tasks pop jobs by ``(priority,
submission order)`` and run them on worker threads via
``loop.run_in_executor`` so the event loop (and the HTTP tier on top of
it) stays responsive.  Each runner slot owns a private
:class:`~repro.toolchain.executor.CampaignExecutor` (``trial_workers``
processes) to shard trials; with ``trial_workers=0`` trials run on the
in-process fork engine.  Identical workloads hitting two slots at once
are serialised by a per-(program, workload) lock — the checkpoint-forked
trial scheduler reuses one trial CPU per workload and is not
re-entrant.

Campaign jobs execute through the :class:`~repro.service.fleet.
FleetCoordinator`: each attack becomes a leased shard that remote
workers pull over HTTP, and when no worker is active the runner slot
runs the shards itself — a fleet of zero degrades to exactly the
pre-fleet single-host behaviour, same events, same bytes.

Progress events stream to any number of subscribers per job (asyncio
queues feeding the NDJSON HTTP endpoint); lifecycle events are also
persisted for replay after the job — or the process — is gone.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
import traceback
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
import weakref
from typing import Any, AsyncIterator, Optional

from repro.obs.metrics import MetricsRegistry, RegistryStats
from repro.obs.profile import ENGINE_COUNTERS, EngineProfiler
from repro.obs.trace import JobTraceRecorder
from repro.service.jobs import JobCancelled, JobError, job_from_dict
from repro.service.store import ResultStore

#: Default submission priority (lower number = served earlier).
PRIORITY_DEFAULT = 10

#: Event kinds persisted to the store for post-hoc replay (high-frequency
#: per-batch progress stays in memory only).  The fleet lifecycle events
#: are persisted too: "which worker lost which shard" is exactly what an
#: operator replays after the fact.
PERSISTED_EVENTS = frozenset(
    {
        "queued",
        "started",
        "attack-finished",
        "finished",
        "failed",
        "cancelled",
        "shard-stolen",
        "shard-retried",
        "shard-resumed",
    }
)


class UnknownJobError(KeyError):
    """A job id the scheduler and the store have never seen."""


class SchedulerStats(RegistryStats):
    """Counters the /status endpoint exposes (and tests assert on).

    Attribute-compatible with the old dataclass (``stats.executed += 1``
    still works), but the storage is :class:`~repro.obs.metrics.
    MetricsRegistry` counters — the same series ``GET /metrics`` renders,
    so the two surfaces cannot disagree.
    """

    _FIELDS = {
        "submitted": "repro_jobs_submitted_total",
        "executed": "repro_jobs_executed_total",
        "failed": "repro_jobs_failed_total",
        "cancelled": "repro_jobs_cancelled_total",
        "deduplicated_inflight": "repro_jobs_deduplicated_inflight_total",
        "deduplicated_store": "repro_jobs_deduplicated_store_total",
    }


class JobHandle:
    """Live state of one queued/running job."""

    def __init__(self, job, job_id: str):
        self.job = job
        self.job_id = job_id
        self.state = "queued"
        self.cancelled = False
        #: Optional :class:`repro.obs.trace.JobTraceRecorder` following
        #: this job's lifecycle (None with observability disabled).
        self.trace: Optional[JobTraceRecorder] = None
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        # Swallow "exception was never retrieved" for fire-and-forget
        # submissions that only ever poll /status.
        self.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self.events: list[dict[str, Any]] = []
        self.subscribers: list[asyncio.Queue] = []


#: Per-(program, workload) locks: the memoized TrialScheduler reuses one
#: trial CPU per workload, so two runner threads must not attack the same
#: workload concurrently.  Entries are keyed by ``id(program)`` but carry
#: a weakref that (a) removes the entry when the program is collected and
#: (b) detects id reuse — locks live exactly as long as their program and
#: are never evicted, so a handed-out lock cannot be silently replaced.
#: (CompiledProgram is an eq-without-hash dataclass, so it cannot key a
#: WeakKeyDictionary directly.)
_workload_locks: dict[int, tuple] = {}
_workload_locks_guard = threading.Lock()


def _drop_workload_locks(program_id: int, ref) -> None:
    with _workload_locks_guard:
        entry = _workload_locks.get(program_id)
        if entry is not None and entry[0] is ref:
            del _workload_locks[program_id]


def _workload_lock(program, function: str, args: tuple) -> threading.Lock:
    program_id = id(program)
    with _workload_locks_guard:
        entry = _workload_locks.get(program_id)
        if entry is None or entry[0]() is not program:
            ref = weakref.ref(
                program,
                lambda r, pid=program_id: _drop_workload_locks(pid, r),
            )
            entry = _workload_locks[program_id] = (ref, {})
        locks = entry[1]
        key = (function, tuple(args))
        lock = locks.get(key)
        if lock is None:
            lock = locks[key] = threading.Lock()
        return lock


class JobScheduler:
    """Owns the queue, the runner tasks, the workbench, and the store."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workbench=None,
        runners: int = 2,
        trial_workers: int = 0,
        cache_size: int = 64,
        fleet=None,
        lease_ttl: float = 10.0,
        observability: bool = True,
    ):
        if runners < 1:
            raise ValueError(f"runners must be >= 1, got {runners}")
        if trial_workers < 0:
            raise ValueError(f"trial_workers must be >= 0, got {trial_workers}")
        if workbench is None:
            from repro.toolchain.workbench import Workbench

            workbench = Workbench(cache_size=cache_size)
        self.store = store if store is not None else ResultStore(":memory:")
        self.workbench = workbench
        self.runners = runners
        self.trial_workers = trial_workers
        #: ``observability=False`` turns off span recording and trace
        #: persistence (metrics counters stay — they back /status).
        self.observability = bool(observability)
        if fleet is None:
            from repro.service.fleet import FleetCoordinator

            #: One registry backs the scheduler, the coordinator, and
            #: ``GET /metrics``: the fleet adopts ours (or we adopt the
            #: injected fleet's below), so /status counters and the
            #: Prometheus scrape read the same storage.
            self.registry = MetricsRegistry()
            fleet = FleetCoordinator(
                store=self.store, lease_ttl=lease_ttl, registry=self.registry
            )
        else:
            registry = getattr(fleet, "registry", None)
            self.registry = registry if registry is not None else MetricsRegistry()
        #: Every campaign executes through the fleet coordinator: remote
        #: workers lease its shards over HTTP, and with no worker active
        #: the runner slot degrades to executing shards locally — so a
        #: fleet of zero behaves exactly like the pre-fleet service.
        self.fleet = fleet
        self.stats = SchedulerStats(self.registry)
        self._profiler = EngineProfiler(self.registry)
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._inflight: dict[str, JobHandle] = {}
        self._runner_tasks: list[asyncio.Task] = []
        self._seq = 0
        self._closed = False
        # All job-lifecycle store *writes* funnel through this one thread:
        # SQLite write contention (another process holding the WAL lock)
        # must stall this worker, never the event loop — and a single
        # thread keeps writes in submission order.  WAL readers never
        # block on writers, so reads stay inline.
        self._store_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-store"
        )
        # Terminal states and full event logs are written to the store
        # asynchronously (via the pool above); these bounded overlays
        # answer status()/events() consistently in the window before the
        # writes land (and keep recent replays cheap).
        self._terminal: OrderedDict[str, tuple[str, Optional[str]]] = OrderedDict()
        self._recent_events: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        # Traces ride the same async store thread as events; this overlay
        # answers trace() in the window before the write lands.
        self._recent_traces: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "JobScheduler":
        if self._runner_tasks:
            raise RuntimeError("scheduler already started")
        self._runner_tasks = [
            asyncio.create_task(self._runner(), name=f"repro-service-runner-{i}")
            for i in range(self.runners)
        ]
        return self

    @property
    def closed(self) -> bool:
        """True once shutdown began — the HTTP tier answers 503 with a
        ``Retry-After`` hint instead of queueing doomed work."""
        return self._closed

    async def close(self) -> None:
        self._closed = True
        for task in self._runner_tasks:
            task.cancel()
        for task in self._runner_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._runner_tasks = []
        self._store_pool.shutdown(wait=True)

    def resume_from_store(self) -> int:
        """Re-enqueue jobs left ``queued``/``running`` by a dead process.

        Returns the number of jobs resumed.  Must be called on the event
        loop after :meth:`start`.
        """
        resumed = 0
        for record in self.store.resumable_jobs():
            if record.job_id in self._inflight:
                continue
            try:
                job = job_from_dict(record.spec)
            except JobError as exc:
                self._remember_terminal(
                    record.job_id, "failed", f"unresumable spec: {exc}"
                )
                self._store_write(
                    self.store.set_state,
                    record.job_id,
                    "failed",
                    f"unresumable spec: {exc}",
                )
                continue
            self._enqueue(job, record.job_id, PRIORITY_DEFAULT, requeue=True)
            resumed += 1
        return resumed

    # -- submission --------------------------------------------------------
    def submit(self, job, priority: int = PRIORITY_DEFAULT) -> tuple[str, bool]:
        """Queue a job (idempotently); returns ``(job_id, deduplicated)``.

        Must be called on the event loop.  ``deduplicated`` is true when
        the id was already in flight or already has a stored result.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        job_id = job.job_id()
        if job_id in self._inflight:
            self.stats.deduplicated_inflight += 1
            return job_id, True
        record = self.store.get_job(job_id)
        if record is not None and record.state == "done":
            if self._stored_result_current(job_id, job):
                self.stats.deduplicated_store += 1
                return job_id, True
            # The scheme builder was replaced since this result was
            # computed (register_scheme(replace=True) bumps the revision,
            # exactly like the Workbench compile cache): re-execute.
        self._enqueue(job, job_id, priority, requeue=False)
        return job_id, False

    def _stored_result_current(self, job_id: str, job) -> bool:
        from repro.service.jobs import _scheme_revision

        payload = self.store.get_result(job_id)
        if (
            payload is None
            or payload.get("scheme_revision") != _scheme_revision(job.config)
        ):
            return False
        if job.kind == "campaign":
            # Pre-analytics payloads (stored before per-trial recording
            # existed) cannot build vulnerability maps; treat them as
            # stale so a resubmission re-executes and upgrades the row —
            # the one escape hatch a service client has.
            attacks = (payload.get("report") or {}).get("attacks") or {}
            if any("records" not in attack for attack in attacks.values()):
                return False
        return True

    def _enqueue(self, job, job_id: str, priority: int, requeue: bool) -> None:
        # A resubmission supersedes a failed/cancelled attempt's overlays
        # AND its persisted event log — a replay must never end at a stale
        # terminal event from the previous attempt.
        self._terminal.pop(job_id, None)
        self._recent_events.pop(job_id, None)
        self._store_write(self.store.clear_events, [job_id])
        # The durable ledger write rides the ordered store thread like
        # every other write (SQLite contention must never stall the event
        # loop); the ack therefore slightly precedes durability — a crash
        # in that window loses only the queued entry, and job ids are
        # deterministic so clients can simply resubmit.
        self._store_write(
            self.store.record_job, job_id, job.kind, job.to_dict(), True
        )
        handle = JobHandle(job, job_id)
        if self.observability:
            handle.trace = JobTraceRecorder(job_id)
            self._recent_traces.pop(job_id, None)
        self._inflight[job_id] = handle
        self._seq += 1
        self._queue.put_nowait((priority, self._seq, job_id))
        self.stats.submitted += 1
        self._publish(
            handle,
            {
                "event": "queued",
                "job_id": job_id,
                "kind": job.kind,
                "title": job.title,
                "resumed": requeue,
            },
        )

    # -- queries -----------------------------------------------------------
    def status(self, job_id: str) -> dict[str, Any]:
        handle = self._inflight.get(job_id)
        record = self.store.get_job(job_id)
        if record is not None:
            status = record.to_dict()
        elif handle is not None:
            # Submitted moments ago: the ledger write is still queued on
            # the store thread; answer from the live handle.
            status = {
                "job_id": job_id,
                "kind": handle.job.kind,
                "title": handle.job.title,
                "error": None,
                "submitted_at": None,
                "started_at": None,
                "finished_at": None,
            }
        else:
            raise UnknownJobError(job_id)
        if handle is not None:
            status["state"] = handle.state
        elif job_id in self._terminal:
            status["state"], status["error"] = self._terminal[job_id]
        return status

    async def result(self, job_id: str) -> dict[str, Any]:
        """The job's result payload, waiting for completion if needed."""
        handle = self._inflight.get(job_id)
        if handle is not None:
            try:
                return await asyncio.shield(handle.future)
            except asyncio.CancelledError:
                if handle.future.cancelled():
                    raise JobError(f"job {job_id} was cancelled") from None
                raise
        payload = self.store.get_result(job_id)
        if payload is not None:
            return payload
        record = self.store.get_job(job_id)
        if record is None:
            raise UnknownJobError(job_id)
        raise JobError(
            f"job {job_id} is {record.state} and has no result"
            + (f": {record.error}" if record.error else "")
        )

    async def events(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Stream the job's events: full replay of what already happened,
        then live events until the job reaches a terminal state."""
        handle = self._inflight.get(job_id)
        if handle is None:
            recent = self._recent_events.get(job_id)
            if recent is not None:  # full in-memory log, incl. batch events
                for event in list(recent):
                    yield event
                return
            if self.store.get_job(job_id) is None:
                raise UnknownJobError(job_id)
            for event in self.store.events(job_id):
                yield event
            return
        queue: asyncio.Queue = asyncio.Queue()
        # No await between the replay snapshot and subscribing, so no
        # event can slip between the two.
        for event in handle.events:
            queue.put_nowait(event)
        if handle.future.done():
            queue.put_nowait(None)
        else:
            handle.subscribers.append(queue)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    return
                yield event
        finally:
            if queue in handle.subscribers:
                handle.subscribers.remove(queue)

    # -- observability -----------------------------------------------------
    def trace(self, job_id: str) -> Optional[list[dict[str, Any]]]:
        """The job's span list: live spans while it executes, the
        persisted trace afterwards.  ``None`` for a known job with no
        trace (observability disabled, or pre-v3 rows).  Raises
        :class:`UnknownJobError` for a job nobody has ever seen."""
        handle = self._inflight.get(job_id)
        if handle is not None and handle.trace is not None:
            return handle.trace.export()
        recent = self._recent_traces.get(job_id)
        if recent is not None:
            return list(recent)
        stored = self.store.get_trace(job_id)
        if stored is not None:
            return stored
        if handle is None and self.store.get_job(job_id) is None:
            raise UnknownJobError(job_id)
        return None

    def collect(self) -> MetricsRegistry:
        """Refresh point-in-time gauges and return the shared registry —
        the ``GET /metrics`` scrape path.  Counters and histograms are
        always current (they are the live storage for stats objects and
        executor merges); only gauges need a poll."""
        registry = self.registry
        registry.gauge("repro_queue_depth").set(self._queue.qsize())
        registry.gauge("repro_jobs_inflight").set(len(self._inflight))
        registry.gauge("repro_runners").set(self.runners)
        registry.gauge("repro_trial_workers").set(self.trial_workers)
        self._profiler.sample_workbench(self.workbench)
        for state, count in self.store.counts().items():
            registry.gauge("repro_store_jobs", labels={"state": state}).set(count)
        fleet_status = self.fleet.status()
        registry.gauge("repro_fleet_workers_active").set(
            len(fleet_status.get("workers") or ())
        )
        for state, count in (fleet_status.get("shards") or {}).items():
            registry.gauge("repro_fleet_shards", labels={"state": state}).set(count)
        return registry

    def observability_status(self) -> dict[str, Any]:
        """The ``/status`` observability block: whether tracing is on,
        how many series exist, and the engine counters ``top`` needs to
        compute throughput deltas between polls."""
        registry = self.collect()
        return {
            "enabled": self.observability,
            "series": registry.series_count(),
            "engine": {
                field: registry.counter(series).value
                for field, series in ENGINE_COUNTERS.items()
            },
        }

    # -- analysis ----------------------------------------------------------
    async def vulnerability_map(self, job_id: str) -> dict[str, Any]:
        """The stored campaign's per-instruction vulnerability map, as a
        JSON payload.  Built off-loop (compile is a cache hit for jobs
        this process ran; the golden run is memoized per program)."""
        loop = asyncio.get_running_loop()
        vmap = await loop.run_in_executor(None, self._locked_map, job_id)
        return {"job_id": job_id, "kind": "vulnerability-map", "map": vmap.to_dict()}

    async def scheme_diff(self, job_a: str, job_b: str) -> dict[str, Any]:
        """Residual-vulnerability diff of two stored campaigns.

        The two jobs must attack the *same program input* — identical
        (source, initializers) content and (function, args) workload —
        otherwise the verdicts would compare unrelated binaries."""
        from repro.analysis.diff import SchemeDiff, require_same_program_input

        require_same_program_input(self.store, job_a, job_b)
        loop = asyncio.get_running_loop()
        # Independent builds (different schemes -> different programs and
        # workload locks): overlap their executor slots.
        map_a, map_b = await asyncio.gather(
            loop.run_in_executor(None, self._locked_map, job_a),
            loop.run_in_executor(None, self._locked_map, job_b),
        )
        diff = SchemeDiff.build(map_a, map_b)
        return {"a": job_a, "b": job_b, "kind": "scheme-diff", "diff": diff.to_dict()}

    def _campaign_job(self, job_id: str):
        from repro.service.jobs import job_from_dict

        record = self.store.get_job(job_id)
        if record is None:
            raise UnknownJobError(job_id)
        try:
            job = job_from_dict(record.spec)
        except JobError as exc:
            raise JobError(f"job {job_id} has an unparsable spec: {exc}") from exc
        if job.kind != "campaign":
            raise JobError(f"job {job_id} is a {job.kind!r} job; maps need a campaign")
        return job

    def _locked_map(self, job_id: str):
        """Map a stored job under its workload lock — the golden-trace
        scheduler reuses one trial CPU per workload and must not be
        touched while a runner slot attacks the same workload.  The map
        is built from the exact program object the lock is keyed on
        (re-consulting the LRU could return a different one)."""
        from repro.analysis.vulnmap import map_from_store

        job = self._campaign_job(job_id)
        program = self.workbench.compile(
            job.source,
            job.config,
            initializers=_initializers_of(job) or None,
        )
        with _workload_lock(program, job.function, tuple(job.args)):
            return map_from_store(self.store, job_id, program=program)

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job: immediately when still queued, at the next
        attack boundary when running.  Done jobs are left alone."""
        handle = self._inflight.get(job_id)
        if handle is None:
            record = self.store.get_job(job_id)
            if record is None:
                raise UnknownJobError(job_id)
            return {"job_id": job_id, "state": record.state, "cancelled": False}
        handle.cancelled = True
        if handle.state == "queued":
            self._finalize_cancel(handle)
            return {"job_id": job_id, "state": "cancelled", "cancelled": True}
        return {"job_id": job_id, "state": handle.state, "cancelled": True}

    # -- execution ---------------------------------------------------------
    async def _runner(self) -> None:
        executor = None
        try:
            while True:
                _, _, job_id = await self._queue.get()
                handle = self._inflight.get(job_id)
                if handle is None or handle.future.done():
                    continue  # cancelled while queued
                if self.trial_workers and executor is None:
                    from repro.toolchain.executor import CampaignExecutor

                    executor = CampaignExecutor(
                        max_workers=self.trial_workers,
                        metrics=self.registry if self.observability else None,
                    )
                try:
                    await self._execute(handle, executor)
                except asyncio.CancelledError:
                    raise
                except BaseException as exc:  # noqa: BLE001 — keep the slot alive
                    self._fail(handle, exc)
        finally:
            if executor is not None:
                # Runner teardown happens on the event loop (task
                # cancellation at shutdown): never block it draining
                # workers mid-campaign.  The interrupted job stays
                # 'running' in the ledger and is resumed on next start.
                executor.close(wait=False)

    async def _execute(self, handle: JobHandle, executor) -> None:
        loop = asyncio.get_running_loop()
        handle.state = "running"
        await loop.run_in_executor(
            self._store_pool, self.store.set_state, handle.job_id, "running"
        )
        self._publish(
            handle,
            {"event": "started", "job_id": handle.job_id, "kind": handle.job.kind},
        )

        def emit(payload: dict[str, Any]) -> None:
            # Called from the worker thread (and, with trial_workers, from
            # executor merge loops): hop onto the loop for publication.
            loop.call_soon_threadsafe(self._publish, handle, payload)

        def compile_program(job):
            # Wall-clock lands only in the histogram and the trace span —
            # never in the compiled program or any compared artifact.
            compile_started = time.perf_counter()
            program = self.workbench.compile(
                job.source,
                job.config,
                initializers=_initializers_of(job) or None,
            )
            elapsed = time.perf_counter() - compile_started
            self.registry.histogram("repro_compile_seconds").observe(elapsed)
            return program

        def run() -> dict[str, Any]:
            job = handle.job
            recorder = handle.trace
            if job.kind == "campaign":
                if recorder is not None:
                    with recorder.span("compile", kind=job.kind):
                        program = compile_program(job)
                else:
                    program = compile_program(job)

                def local_run(job_, index: int) -> dict[str, Any]:
                    # Degradation path: this runner slot executes one
                    # shard itself, under the workload lock keyed on the
                    # exact compiled object (see _workload_lock).
                    lock = _workload_lock(program, job_.function, job_.args)
                    with lock:
                        return job_.run_shard(
                            self.workbench,
                            index,
                            executor=executor,
                            emit=emit,
                            program=program,
                        )

                try:
                    return self.fleet.execute_job(
                        job,
                        local_run=local_run,
                        emit=emit,
                        should_stop=lambda: handle.cancelled,
                    )
                finally:
                    # After-attack engine boundary: fold the trial
                    # schedulers' own counters into the shared registry
                    # (sampled, so the no-hook fast loop stays untouched).
                    self._profiler.sample_program(program)
                    self._profiler.sample_workbench(self.workbench)
                    if executor is not None:
                        self._profiler.sample_executor(executor)
            try:
                return job.execute(self.workbench, emit=emit)
            finally:
                self._profiler.sample_workbench(self.workbench)

        job_started = time.perf_counter()
        try:
            payload = await loop.run_in_executor(None, run)
            self.stats.executed += 1
            self.registry.histogram("repro_job_seconds").observe(
                time.perf_counter() - job_started
            )
            # Result durability before the 'finished' event: a client that
            # sees the stream end must find the result in the store.
            await loop.run_in_executor(
                self._store_pool, self.store.store_result, handle.job_id, payload
            )
        except JobCancelled:
            self._finalize_cancel(handle)
        except Exception as exc:  # noqa: BLE001 — jobs must not kill runners
            self._fail(handle, exc)
        else:
            handle.state = "done"
            self._publish(
                handle,
                {"event": "finished", "job_id": handle.job_id, "kind": handle.job.kind},
            )
            handle.future.set_result(payload)
            self._persist_trace(handle)
            self._close_stream(handle)

    def _fail(self, handle: JobHandle, exc: BaseException) -> None:
        error = f"{type(exc).__name__}: {exc}"
        self.stats.failed += 1
        handle.state = "failed"
        self._remember_terminal(handle.job_id, "failed", error)
        self._store_write(self.store.set_state, handle.job_id, "failed", error)
        self._publish(
            handle,
            {
                "event": "failed",
                "job_id": handle.job_id,
                "error": error,
                "traceback": "".join(
                    traceback.format_exception(exc, limit=8)
                ),
            },
        )
        if not handle.future.done():
            handle.future.set_exception(JobError(error))
        self._persist_trace(handle)
        self._close_stream(handle)

    def _finalize_cancel(self, handle: JobHandle) -> None:
        self.stats.cancelled += 1
        handle.state = "cancelled"
        self._remember_terminal(handle.job_id, "cancelled")
        self._store_write(self.store.set_state, handle.job_id, "cancelled")
        self._publish(
            handle, {"event": "cancelled", "job_id": handle.job_id}
        )
        handle.future.cancel()
        self._persist_trace(handle)
        self._close_stream(handle)

    # -- event plumbing ----------------------------------------------------
    def _publish(self, handle: JobHandle, payload: dict[str, Any]) -> None:
        handle.events.append(payload)
        if handle.trace is not None:
            # The recorder folds the event stream into spans.  _publish
            # always runs on the event loop, so per-handle calls are
            # serialised without any extra locking.
            handle.trace.on_event(payload)
        if payload.get("event") in PERSISTED_EVENTS:
            self._store_write(self.store.append_event, handle.job_id, payload)
        for queue in handle.subscribers:
            queue.put_nowait(payload)

    def _persist_trace(self, handle: JobHandle) -> None:
        recorder = handle.trace
        if recorder is None:
            return
        spans = recorder.export()
        self.registry.counter("repro_traces_total").inc()
        self._recent_traces[handle.job_id] = spans
        self._recent_traces.move_to_end(handle.job_id)
        while len(self._recent_traces) > 256:
            self._recent_traces.popitem(last=False)
        self._store_write(self.store.store_trace, handle.job_id, spans)

    def _remember_terminal(
        self, job_id: str, state: str, error: Optional[str] = None
    ) -> None:
        self._terminal[job_id] = (state, error)
        self._terminal.move_to_end(job_id)
        while len(self._terminal) > 1024:
            self._terminal.popitem(last=False)

    def _store_write(self, fn, *args) -> None:
        """Fire-and-forget store write on the (ordered) store thread;
        durability failures are reported, never fatal to the service."""

        def write() -> None:
            try:
                fn(*args)
            except Exception as exc:  # noqa: BLE001
                print(
                    f"repro.service: store write {fn.__name__}{args[:1]} "
                    f"failed: {exc}",
                    file=sys.stderr,
                )

        try:
            self._store_pool.submit(write)
        except RuntimeError:  # pool shut down mid-flight
            write()

    def _close_stream(self, handle: JobHandle) -> None:
        for queue in handle.subscribers:
            queue.put_nowait(None)
        handle.subscribers = []
        self._recent_events[handle.job_id] = handle.events
        self._recent_events.move_to_end(handle.job_id)
        while len(self._recent_events) > 256:
            self._recent_events.popitem(last=False)
        self._inflight.pop(handle.job_id, None)


def _initializers_of(job) -> dict[str, bytes]:
    from repro.service.jobs import _decode_initializers

    return _decode_initializers(job.initializers)
