"""Worker-fleet protocol: leased shards, heartbeats, work-stealing.

One campaign job splits into **shards** — one per attack spec — each
identified by a content hash (:meth:`CampaignJob.shard_id`).  Remote
runners pull shards over the existing NDJSON HTTP surface:

1. ``POST /fleet/lease`` — a :class:`FleetRunner` asks for work and
   receives a shard (the full job envelope + attack index) under a
   time-limited lease;
2. ``POST /fleet/shards/<id>/heartbeat`` — the runner renews the lease
   while the attack executes;
3. ``POST /fleet/shards/<id>/result`` — the runner posts the shard's
   :class:`~repro.faults.isa_campaign.AttackResult` payload (or a
   structured failure naming the in-flight fault models, extending
   :class:`~repro.toolchain.executor.CampaignExecutorError` across the
   network boundary).

Robustness invariants:

* **Lease expiry = work-stealing.**  A runner that dies or partitions
  mid-shard stops heartbeating; the coordinator returns its shard to the
  pending pool (``steals`` counter) and the next ``lease`` call — any
  healthy worker — picks it up.
* **Idempotent, content-keyed results.**  Shard execution is
  deterministic, so duplicate completions (a stolen lease's original
  worker finishing late, a retried POST after a dropped response) carry
  byte-identical payloads; the first one wins, the rest are counted and
  dropped.  Completed shards are persisted *before* the ack, so a
  coordinator crash never loses acknowledged work — on restart the job
  resumes from its stored shards.
* **Graceful degradation.**  A coordinator with no live workers executes
  pending shards on its own runner slot (``local_shards`` counter), so
  an empty or fully-dead fleet is never worse than the single-host
  service of PR 3.

The merged report is byte-identical to a single-host run by
construction: shards are merged in attack-spec order and each shard's
payload is the same ``attack_result_to_dict`` dict the local path
produces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry, RegistryStats, snapshot_delta
from repro.obs.profile import EngineProfiler
from repro.service.jobs import JobCancelled, JobError

#: Worker name the coordinator uses for shards it degrades to local
#: execution (never a valid remote worker id).
LOCAL_WORKER = "<local>"

#: A shard that failed (worker error report or stolen lease) more than
#: this many times fails the whole job instead of retrying forever.
MAX_SHARD_ATTEMPTS = 5


class FleetStats(RegistryStats):
    """The ``/status`` ``fleet`` counter block (and what tests assert on).

    Backed by the coordinator's :class:`~repro.obs.metrics.
    MetricsRegistry` — attribute reads/writes and the ``/metrics``
    exposition share one storage, so the two can never disagree.

    ``duplicates`` counts duplicate shard completions dropped by the
    idempotent merge; ``retries`` worker-reported failures that were
    re-queued; ``steals`` expired leases returned to the pool;
    ``local_shards`` shards the coordinator executed itself (empty/dead
    fleet); ``resumed_shards`` shards answered from the store after a
    restart.
    """

    _FIELDS = {
        "leases": "repro_fleet_leases_total",
        "heartbeats": "repro_fleet_heartbeats_total",
        "completed": "repro_fleet_shards_completed_total",
        "duplicates": "repro_fleet_duplicates_total",
        "retries": "repro_fleet_retries_total",
        "steals": "repro_fleet_steals_total",
        "local_shards": "repro_fleet_local_shards_total",
        "resumed_shards": "repro_fleet_resumed_shards_total",
    }


@dataclass
class _Shard:
    shard_id: str
    job_id: str
    index: int
    attack: str
    suite: str
    state: str = "pending"  # pending | leased | done
    worker: Optional[str] = None
    token: Optional[str] = None
    expires: float = 0.0
    attempts: int = 0
    payload: Optional[dict[str, Any]] = None


@dataclass
class _FleetJob:
    job: Any
    job_id: str
    envelope: dict[str, Any]
    shards: list[_Shard]
    emit: Callable[[dict[str, Any]], None]
    scheme_revision: int
    error: Optional[str] = None
    done: int = field(default=0)


class FleetCoordinator:
    """Owns the shard table; safe to call from the event loop (HTTP
    handlers) and from runner threads (job execution) concurrently.

    All state transitions happen under one condition variable; lease
    expiry is swept lazily on every lease/heartbeat/wait tick, so the
    coordinator needs no background task of its own.
    """

    def __init__(
        self,
        store=None,
        *,
        lease_ttl: float = 10.0,
        worker_ttl: Optional[float] = None,
        max_shard_attempts: int = MAX_SHARD_ATTEMPTS,
        registry: Optional[MetricsRegistry] = None,
    ):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.store = store
        self.lease_ttl = lease_ttl
        #: Shared metrics home: the scheduler hands its registry down so
        #: fleet counters, queue counters, and worker rollups land in one
        #: place (a standalone coordinator gets a private registry).
        self.registry = registry if registry is not None else MetricsRegistry()
        #: A worker silent for longer than this no longer counts as
        #: *active* — the threshold for degrading shards to local
        #: execution.  Defaults to the lease TTL: a live worker talks at
        #: least that often (heartbeats run at ttl/3).
        self.worker_ttl = worker_ttl if worker_ttl is not None else lease_ttl
        self.max_shard_attempts = max_shard_attempts
        self.stats = FleetStats(self.registry)
        self._cond = threading.Condition()
        self._jobs: dict[str, _FleetJob] = {}
        self._shards: dict[str, _Shard] = {}
        self._workers: dict[str, float] = {}
        self._token_seq = 0

    # -- worker bookkeeping ------------------------------------------------
    def _touch_worker_locked(self, worker: str, now: float) -> None:
        if worker == LOCAL_WORKER:
            return
        self._workers[worker] = now
        if len(self._workers) > 1024:  # bounded: drop the longest-silent
            for stale in sorted(self._workers, key=self._workers.get)[:256]:
                del self._workers[stale]

    def active_workers(self, now: Optional[float] = None) -> list[str]:
        now = time.monotonic() if now is None else now
        with self._cond:
            return [
                worker
                for worker, seen in self._workers.items()
                if now - seen <= self.worker_ttl
            ]

    # -- lazy lease expiry -------------------------------------------------
    def _sweep_locked(self, now: float) -> None:
        for shard in self._shards.values():
            if shard.state == "leased" and shard.worker != LOCAL_WORKER and (
                shard.expires < now
            ):
                lost_worker = shard.worker
                shard.state = "pending"
                shard.worker = None
                shard.token = None
                shard.attempts += 1
                self.stats.steals += 1
                job = self._jobs.get(shard.job_id)
                if job is not None:
                    job.emit(
                        {
                            "event": "shard-stolen",
                            "shard": shard.shard_id,
                            "attack": shard.attack,
                            "index": shard.index,
                            "worker": lost_worker,
                            "attempts": shard.attempts,
                        }
                    )
                    if shard.attempts >= self.max_shard_attempts:
                        job.error = (
                            f"shard {shard.shard_id} ({shard.attack}) lost "
                            f"{shard.attempts} leases in a row; giving up"
                        )
        self._cond.notify_all()

    # -- worker-facing protocol -------------------------------------------
    def lease(
        self, worker: str, ttl: Optional[float] = None
    ) -> Optional[dict[str, Any]]:
        """Hand the longest-waiting pending shard to ``worker`` (or
        ``None`` when there is no work).  Called by ``POST /fleet/lease``."""
        if not worker or worker == LOCAL_WORKER:
            raise JobError(f"invalid fleet worker id {worker!r}")
        ttl = self.lease_ttl if ttl is None else float(ttl)
        ttl = max(0.05, min(ttl, 10 * self.lease_ttl))
        now = time.monotonic()
        with self._cond:
            self._touch_worker_locked(worker, now)
            self._sweep_locked(now)
            for job in self._jobs.values():
                if job.error is not None:
                    continue
                for shard in job.shards:
                    if shard.state != "pending":
                        continue
                    self._token_seq += 1
                    shard.state = "leased"
                    shard.worker = worker
                    shard.token = f"{worker}:{self._token_seq}"
                    shard.expires = now + ttl
                    self.stats.leases += 1
                    job.emit(
                        {
                            "event": "attack-started",
                            "attack": shard.attack,
                            "suite": shard.suite,
                            "index": shard.index,
                            "of": len(job.shards),
                            "worker": worker,
                            "attempt": shard.attempts + 1,
                        }
                    )
                    return {
                        "shard_id": shard.shard_id,
                        "job_id": shard.job_id,
                        "attack_index": shard.index,
                        "attack": shard.attack,
                        "suite": shard.suite,
                        "token": shard.token,
                        "ttl": ttl,
                        "job": job.envelope,
                    }
        return None

    def heartbeat(
        self,
        shard_id: str,
        worker: str,
        token: str,
        ttl: Optional[float] = None,
        metrics: Optional[dict[str, Any]] = None,
    ) -> dict[str, Any]:
        """Renew a lease; ``valid: False`` tells the worker its lease was
        stolen (or the shard is gone) and it should abandon the shard.

        ``metrics`` is an optional worker-side registry *delta*
        (:meth:`~repro.obs.metrics.MetricsRegistry.delta`) riding the
        beat; the coordinator rolls it up so ``/metrics`` aggregates
        engine throughput across the whole fleet.
        """
        if metrics:
            self.registry.merge(metrics)
        ttl = self.lease_ttl if ttl is None else float(ttl)
        now = time.monotonic()
        with self._cond:
            self._touch_worker_locked(worker, now)
            self.stats.heartbeats += 1
            self._sweep_locked(now)
            shard = self._shards.get(shard_id)
            if shard is None:
                return {"valid": False, "state": "unknown"}
            if shard.state != "leased" or shard.token != token:
                return {"valid": False, "state": shard.state}
            shard.expires = now + max(0.05, ttl)
            return {"valid": True, "state": "leased", "ttl": ttl}

    def submit_result(
        self,
        shard_id: str,
        worker: str,
        payload: Optional[dict[str, Any]] = None,
        token: Optional[str] = None,
        error: Optional[str] = None,
        fault_models: Optional[list[str]] = None,
    ) -> dict[str, Any]:
        """Record a shard completion (idempotently) or a worker-reported
        failure (re-queues the shard and names the in-flight fault
        models in the job's event stream)."""
        now = time.monotonic()
        with self._cond:
            self._touch_worker_locked(worker, now)
            shard = self._shards.get(shard_id)
            if shard is None:
                return {"accepted": False, "unknown": True}
            job = self._jobs.get(shard.job_id)
            if error is not None:
                return self._record_failure_locked(
                    shard, job, worker, token, error, fault_models
                )
            if payload is None:
                raise JobError("shard result needs 'result' or 'error'")
            if shard.state == "done":
                self.stats.duplicates += 1
                return {"accepted": True, "duplicate": True}
        # Durability before the ack (and outside the condition — a slow
        # store write must not stall lease/heartbeat traffic): a worker
        # whose ack is lost will retry, and the retry lands on the
        # duplicate path above.
        if self.store is not None and job is not None:
            self.store.store_shard(
                shard_id,
                shard.job_id,
                shard.index,
                job.scheme_revision,
                payload,
            )
        with self._cond:
            shard = self._shards.get(shard_id)
            if shard is None:  # job finished/cancelled while we wrote
                return {"accepted": False, "unknown": True}
            if shard.state == "done":
                self.stats.duplicates += 1
                return {"accepted": True, "duplicate": True}
            shard.payload = payload
            shard.state = "done"
            shard.worker = worker
            self.stats.completed += 1
            job = self._jobs.get(shard.job_id)
            if job is not None:
                job.done += 1
                event_result = dict(payload.get("result") or {})
                event_result.pop("records", None)
                job.emit(
                    {
                        "event": "attack-finished",
                        "attack": shard.attack,
                        "index": shard.index,
                        "of": len(job.shards),
                        "result": event_result,
                        "worker": worker,
                    }
                )
            self._cond.notify_all()
            return {"accepted": True, "duplicate": False}

    def _record_failure_locked(
        self, shard, job, worker, token, error, fault_models
    ) -> dict[str, Any]:
        if shard.state != "leased" or (token is not None and shard.token != token):
            # A stale worker (stolen lease) reporting failure must not
            # re-queue a shard someone else now owns.
            return {"accepted": False, "stale": True, "state": shard.state}
        shard.state = "pending"
        shard.worker = None
        shard.token = None
        shard.attempts += 1
        self.stats.retries += 1
        if job is not None:
            job.emit(
                {
                    "event": "shard-retried",
                    "shard": shard.shard_id,
                    "attack": shard.attack,
                    "index": shard.index,
                    "worker": worker,
                    "error": error,
                    "fault_models": list(fault_models or []),
                    "attempts": shard.attempts,
                }
            )
            if shard.attempts >= self.max_shard_attempts:
                job.error = (
                    f"shard {shard.shard_id} ({shard.attack}) failed "
                    f"{shard.attempts} times; last error: {error}"
                )
        self._cond.notify_all()
        return {"accepted": True, "requeued": True}

    # -- coordinator-side job execution -----------------------------------
    def execute_job(
        self,
        job,
        *,
        local_run: Callable[[Any, int], dict[str, Any]],
        emit: Optional[Callable[[dict[str, Any]], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        poll_interval: float = 0.05,
    ) -> dict[str, Any]:
        """Shard ``job``, feed the fleet, and block until every shard is
        done; returns the merged result payload.

        Runs on a scheduler runner thread.  ``local_run(job, index)``
        executes one shard in-process (compile + workload lock + attack)
        — the degradation path used whenever no worker is active.
        Partial results stored by a previous coordinator incarnation are
        consumed instead of re-executed.
        """
        from repro.service.jobs import _scheme_revision

        emit = emit or (lambda payload: None)
        should_stop = should_stop or (lambda: False)
        job_id = job.job_id()
        revision = _scheme_revision(job.config)
        shards = [
            _Shard(
                shard_id=job.shard_id(index),
                job_id=job_id,
                index=index,
                attack=spec.default_label,
                suite=spec.suite,
            )
            for index, spec in enumerate(job.attacks)
        ]
        fleet_job = _FleetJob(
            job=job,
            job_id=job_id,
            envelope=job.to_dict(),
            shards=shards,
            emit=emit,
            scheme_revision=revision,
        )
        stored = self.store.shard_payloads(job_id) if self.store else {}
        with self._cond:
            if job_id in self._jobs:
                raise JobError(f"job {job_id} is already executing on the fleet")
            self._jobs[job_id] = fleet_job
            for shard in shards:
                self._shards[shard.shard_id] = shard
                row = stored.get(shard.shard_id)
                # Stale-revision rows (scheme builder replaced since the
                # shard ran) are ignored and re-executed, mirroring the
                # scheduler's store-dedup invalidation.
                if row is not None and row[1] == revision:
                    shard.payload = row[2]
                    shard.state = "done"
                    fleet_job.done += 1
                    self.stats.resumed_shards += 1
                    emit(
                        {
                            "event": "shard-resumed",
                            "shard": shard.shard_id,
                            "attack": shard.attack,
                            "index": shard.index,
                        }
                    )
            self._cond.notify_all()
        try:
            while True:
                claimed = None
                with self._cond:
                    now = time.monotonic()
                    self._sweep_locked(now)
                    if fleet_job.error is not None:
                        raise JobError(fleet_job.error)
                    if should_stop():
                        raise JobCancelled(
                            f"cancelled with {fleet_job.done} of "
                            f"{len(shards)} shards done"
                        )
                    if fleet_job.done == len(shards):
                        break
                    if not any(
                        now - seen <= self.worker_ttl
                        for seen in self._workers.values()
                    ):
                        # Degradation: nobody to steal the work, so this
                        # runner slot does it.  One shard per claim keeps
                        # the event stream in attack order and lets a
                        # late-joining worker pick up the rest.
                        for shard in shards:
                            if shard.state == "pending":
                                shard.state = "leased"
                                shard.worker = LOCAL_WORKER
                                shard.token = LOCAL_WORKER
                                shard.expires = float("inf")
                                emit(
                                    {
                                        "event": "attack-started",
                                        "attack": shard.attack,
                                        "suite": shard.suite,
                                        "index": shard.index,
                                        "of": len(shards),
                                        "worker": LOCAL_WORKER,
                                        "attempt": shard.attempts + 1,
                                    }
                                )
                                claimed = shard
                                break
                    if claimed is None:
                        self._cond.wait(poll_interval)
                        continue
                payload = local_run(job, claimed.index)
                self.stats.local_shards += 1
                self.submit_result(
                    claimed.shard_id,
                    LOCAL_WORKER,
                    payload=payload,
                    token=LOCAL_WORKER,
                )
            return self._merge(fleet_job)
        finally:
            with self._cond:
                self._jobs.pop(job_id, None)
                for shard in shards:
                    self._shards.pop(shard.shard_id, None)
                self._cond.notify_all()

    def _merge(self, fleet_job: _FleetJob) -> dict[str, Any]:
        """Merged result payload, byte-identical to ``CampaignJob.execute``:
        shards land in attack-spec order regardless of completion order."""
        payloads = [shard.payload for shard in fleet_job.shards]
        schemes = {p["scheme"] for p in payloads}
        if len(schemes) != 1:
            raise JobError(
                f"fleet shards disagree on the compiled scheme: "
                f"{sorted(schemes)} — are all workers running the same "
                f"scheme registry?"
            )
        return {
            "kind": fleet_job.job.kind,
            "job_id": fleet_job.job_id,
            "scheme_revision": fleet_job.scheme_revision,
            "report": {
                "scheme": payloads[0]["scheme"],
                "attacks": {p["attack"]: p["result"] for p in payloads},
            },
        }

    # -- introspection -----------------------------------------------------
    def status(self) -> dict[str, Any]:
        now = time.monotonic()
        with self._cond:
            states: dict[str, int] = {}
            for shard in self._shards.values():
                states[shard.state] = states.get(shard.state, 0) + 1
            return {
                "workers": sorted(
                    worker
                    for worker, seen in self._workers.items()
                    if now - seen <= self.worker_ttl
                ),
                "lease_ttl": self.lease_ttl,
                "jobs": len(self._jobs),
                "shards": states,
                "counters": self.stats.to_dict(),
            }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _compile_job(workbench, job):
    """Compile a campaign job the way :meth:`CampaignJob.run_shard` would
    (same cache key), so the runner holds the program object and can
    sample its trial schedulers after the shard."""
    from repro.service.jobs import _decode_initializers

    return workbench.compile(
        job.source,
        job.config,
        initializers=_decode_initializers(job.initializers) or None,
    )


class FleetRunner:
    """A worker-fleet runner: lease, execute, heartbeat, report, repeat.

    Transport failures never kill the loop — every call retries with the
    client's exponential backoff, and an empty pool is polled at the
    coordinator-suggested cadence.  A
    :class:`~repro.toolchain.executor.CampaignExecutorError` (trial
    worker process death) is reported to the coordinator with the
    in-flight fault-model names, so the shard is re-queued and the
    operator can see *what* took the worker down.

    ``chaos`` accepts a :class:`repro.service.chaos.WorkerChaos` plan:
    at scheduled lease ordinals the runner "dies" silently — it keeps
    the lease, never heartbeats, never reports — which is exactly what a
    SIGKILLed worker process looks like from the coordinator.
    """

    def __init__(
        self,
        address,
        *,
        worker_id: Optional[str] = None,
        ttl: float = 5.0,
        poll: float = 0.2,
        workbench=None,
        trial_workers: int = 0,
        chaos=None,
        client_kwargs: Optional[dict[str, Any]] = None,
    ):
        from repro.service.client import ServiceClient

        self.client = ServiceClient.parse(address, **(client_kwargs or {}))
        self.worker_id = worker_id or f"worker-{id(self):x}"
        self.ttl = ttl
        self.poll = poll
        self.trial_workers = trial_workers
        self.chaos = chaos
        self._workbench = workbench
        self._executor = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.leases = 0
        self.shards_done = 0
        self.shards_failed = 0
        self.died = False
        #: Worker-local registry: engine counters folded in after each
        #: shard, shipped to the coordinator as heartbeat deltas.
        self.registry = MetricsRegistry()
        self._profiler = EngineProfiler(self.registry)
        #: Snapshot acknowledged by the last successful heartbeat — the
        #: delta baseline.  Touched only by the (one-at-a-time, joined)
        #: heartbeat threads.
        self._last_sent: Optional[dict[str, Any]] = None

    @property
    def workbench(self):
        if self._workbench is None:
            from repro.toolchain.workbench import Workbench

            self._workbench = Workbench()
        return self._workbench

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FleetRunner":
        """Run the lease loop on a daemon thread (tests/harness use)."""
        if self._thread is not None:
            raise RuntimeError("runner already started")
        self._thread = threading.Thread(
            target=self.run_forever, name=f"repro-fleet-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, join: bool = True) -> None:
        self._stop.set()
        if join and self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "FleetRunner":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the loop ----------------------------------------------------------
    def run_forever(self, max_shards: Optional[int] = None) -> None:
        from repro.service.client import ServiceError

        try:
            while not self._stop.is_set():
                if max_shards is not None and self.shards_done >= max_shards:
                    return
                try:
                    leased = self.client.fleet_lease(self.worker_id, ttl=self.ttl)
                except ServiceError:
                    # Coordinator unreachable (the client already retried
                    # with backoff): keep polling until stopped.
                    if self._stop.wait(self.poll):
                        return
                    continue
                shard = leased.get("shard")
                if shard is None:
                    delay = float(leased.get("retry_after") or self.poll)
                    if self._stop.wait(min(delay, self.poll)):
                        return
                    continue
                self.leases += 1
                self.registry.counter("repro_worker_leases_total").inc()
                if self.chaos is not None and self.chaos.should_die(self.leases):
                    # Vanish mid-shard: hold the lease, stop talking.
                    self.died = True
                    return
                self._run_shard(shard)
        finally:
            if self._executor is not None:
                self._executor.close(wait=False)
                self._executor = None

    def _run_shard(self, shard: dict[str, Any]) -> None:
        from repro.service.client import ServiceError
        from repro.service.jobs import job_from_dict
        from repro.toolchain.executor import CampaignExecutorError

        shard_id = shard["shard_id"]
        token = shard["token"]
        hb_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(shard_id, token, hb_stop),
            name=f"repro-fleet-{self.worker_id}-hb",
            daemon=True,
        )
        heartbeat.start()
        program = None
        try:
            try:
                job = job_from_dict(shard["job"])
                program = _compile_job(self.workbench, job)
                payload = job.run_shard(
                    self.workbench,
                    shard["attack_index"],
                    executor=self._trial_executor(),
                    program=program,
                )
            except CampaignExecutorError as exc:
                # The network extension of local executor recovery: name
                # the in-flight fault models in the shard's event stream.
                self._count_shard_failed()
                self._report_error(
                    shard_id,
                    token,
                    str(exc),
                    [repr(model) for model in exc.fault_models[:8]],
                )
                return
            except Exception as exc:  # noqa: BLE001 — shard bugs must not kill the loop
                self._count_shard_failed()
                self._report_error(
                    shard_id, token, f"{type(exc).__name__}: {exc}", []
                )
                return
            try:
                self.client.fleet_result(
                    shard_id, self.worker_id, token=token, result=payload
                )
                self.shards_done += 1
                self.registry.counter("repro_worker_shards_done_total").inc()
            except ServiceError:
                # The coordinator will steal the lease; the re-run is
                # deterministic and the eventual duplicate merges cleanly.
                self._count_shard_failed()
        finally:
            hb_stop.set()
            heartbeat.join(timeout=5)
            self._sample_engine(program)
            self._flush_metrics(shard_id, token)

    def _trial_executor(self):
        if self.trial_workers and self._executor is None:
            from repro.toolchain.executor import CampaignExecutor

            # One in-shard recovery attempt before reporting the failure
            # (and its fault models) back to the coordinator: a single
            # dead trial process shouldn't cost a whole lease round-trip.
            self._executor = CampaignExecutor(
                max_workers=self.trial_workers,
                max_batch_retries=1,
                metrics=self.registry,
            )
        return self._executor

    def _count_shard_failed(self) -> None:
        self.shards_failed += 1
        self.registry.counter("repro_worker_shards_failed_total").inc()

    def _sample_engine(self, program) -> None:
        """After-shard boundary: fold the engine's own counters into the
        worker registry (the next heartbeat ships the delta)."""
        if program is not None:
            self._profiler.sample_program(program)
        if self._workbench is not None:
            self._profiler.sample_workbench(self._workbench)
        if self._executor is not None:
            self._profiler.sample_executor(self._executor)

    def _flush_metrics(self, shard_id: str, token: str) -> None:
        """Best-effort final beat carrying whatever the heartbeat loop
        hasn't shipped yet (the shard's own engine counters land here —
        the loop was already asleep when the shard finished).  A stolen
        lease still merges the metrics; only the renewal is refused."""
        from repro.service.client import ServiceError

        snapshot = self.registry.snapshot()
        delta = snapshot_delta(self._last_sent, snapshot)
        if not (delta.get("counters") or delta.get("histograms")):
            return
        try:
            self.client.fleet_heartbeat(
                shard_id, self.worker_id, token, ttl=self.ttl, metrics=delta
            )
            self._last_sent = snapshot
        except ServiceError:
            pass  # the next shard's heartbeats re-ship the delta

    def _report_error(
        self, shard_id: str, token: str, error: str, fault_models: list[str]
    ) -> None:
        from repro.service.client import ServiceError

        try:
            self.client.fleet_result(
                shard_id,
                self.worker_id,
                token=token,
                error=error,
                fault_models=fault_models,
            )
        except ServiceError:
            pass  # lease expiry re-queues the shard anyway

    def _heartbeat_loop(
        self, shard_id: str, token: str, stop: threading.Event
    ) -> None:
        from repro.service.client import ServiceError

        interval = max(0.05, self.ttl / 3.0)
        while not stop.wait(interval):
            snapshot = self.registry.snapshot()
            delta = snapshot_delta(self._last_sent, snapshot)
            try:
                renewed = self.client.fleet_heartbeat(
                    shard_id,
                    self.worker_id,
                    token,
                    ttl=self.ttl,
                    metrics=delta or None,
                )
            except ServiceError:
                continue  # transient; the next beat retries the delta too
            self._last_sent = snapshot
            if not renewed.get("valid"):
                return  # lease stolen: stop renewing (result may still land)
