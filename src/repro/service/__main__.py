"""Entry point: ``python -m repro.service <serve|submit|status|results>``."""

from repro.service.cli import main

raise SystemExit(main())
