"""Process-local metrics: counters, gauges, streaming-quantile histograms.

One :class:`MetricsRegistry` per process (or per subsystem under test)
holds every series.  Three design constraints shape the module:

* **Mergeable.**  Campaign trials run in forked worker processes and on
  remote fleet workers; a registry snapshot is a plain-dict (picklable,
  JSON-able) value that :meth:`MetricsRegistry.merge` folds into another
  registry — counters and histogram buckets add, gauges overwrite.  The
  same mechanism carries worker metrics home on fleet heartbeats
  (:meth:`MetricsRegistry.delta` ships only what changed since the last
  acknowledged beat).
* **Streaming quantiles.**  :class:`Histogram` keeps sparse logarithmic
  buckets (:data:`BUCKETS_PER_DECADE` per decade, ~1.2 % relative
  width) instead of samples, so p50/p90/p99 over millions of
  observations cost a dict of small ints.  Quantile selection is the
  same nearest-rank rule as :func:`quantile` — one implementation for
  benches (exact, over raw samples) and registries (streaming).
* **Deterministic-safe.**  Nothing here reads a clock; callers decide
  what to observe.  Campaign *reports* never embed metric values, so
  instrumented runs stay byte-identical to uninstrumented ones.

Series names follow Prometheus conventions (``repro_*``, counters end in
``_total``); :func:`render_prometheus` emits the text exposition format
behind ``GET /metrics``.  Every public series is declared in
:mod:`repro.obs.catalog` — the documentation test enforces the catalogue.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Optional

#: Log-bucket resolution: buckets per factor-of-ten.  100 gives a
#: relative bucket width of 10**(1/100) ≈ 2.3 %, i.e. quantiles are
#: accurate to ~±1.2 % — far inside the tolerance of any latency figure.
BUCKETS_PER_DECADE = 100


def _nearest_rank(count: int, q: float) -> int:
    """The sample index the ``q``-quantile selects (nearest-rank rule).

    Matches the convention the fleet bench has always reported:
    ``ordered[min(count - 1, round(q * (count - 1)))]``.
    """
    if count <= 0:
        raise ValueError("quantile of an empty sample")
    return min(count - 1, round(q * (count - 1)))


def quantile(values: Iterable[float], q: float) -> float:
    """Exact nearest-rank quantile of raw samples (``0 <= q <= 1``).

    The single quantile implementation the benches share; for streaming
    data use :meth:`Histogram.quantile`, which applies the same rank
    rule over log buckets.
    """
    ordered = sorted(values)
    return ordered[_nearest_rank(len(ordered), q)]


class Counter:
    """A monotonically increasing integer series."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def add(self, amount: int) -> None:
        self.inc(amount)


class Gauge:
    """A point-in-time value (queue depth, cache size, shard counts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming quantiles over sparse logarithmic buckets.

    ``observe(v)`` costs one dict increment; no samples are retained.
    Non-positive observations land in a dedicated zero bucket (latency
    and size distributions are non-negative; exact zeros are common for
    cache-hit timings rounded to nothing).
    """

    __slots__ = ("name", "labels", "count", "sum", "zero", "buckets")

    def __init__(self, name: str, labels: Optional[dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.count = 0
        self.sum = 0.0
        self.zero = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value <= 0.0:
            self.zero += 1
            return
        index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @staticmethod
    def _representative(index: int) -> float:
        """Geometric midpoint of bucket ``index``."""
        return 10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the buckets (``0 <= q <= 1``)."""
        rank = _nearest_rank(self.count, q)
        if rank < self.zero:
            return 0.0
        seen = self.zero
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank < seen:
                return self._representative(index)
        raise AssertionError("rank beyond bucket population")  # pragma: no cover

    def merge(self, other: dict[str, Any]) -> None:
        """Fold a snapshot of another histogram into this one."""
        self.count += int(other.get("count", 0))
        self.sum += float(other.get("sum", 0.0))
        self.zero += int(other.get("zero", 0))
        for index, n in (other.get("buckets") or {}).items():
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + int(n)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "zero": self.zero,
            "buckets": dict(self.buckets),
        }


def _key(name: str, labels: Optional[dict[str, str]]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every metric series in one process.

    Thread-safe: one lock guards creation and mutation (the hot paths —
    a counter bump per batch, a histogram observation per request — are
    far off the per-trial fast loop, so the lock is never contended at
    trial rates).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create -----------------------------------------------------
    def counter(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Counter:
        key = _key(name, labels)
        with self._lock:
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(name, labels)
            return series

    def gauge(self, name: str, labels: Optional[dict[str, str]] = None) -> Gauge:
        key = _key(name, labels)
        with self._lock:
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(name, labels)
            return series

    def histogram(
        self, name: str, labels: Optional[dict[str, str]] = None
    ) -> Histogram:
        key = _key(name, labels)
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(name, labels)
            return series

    def series_count(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges) + len(self._histograms)
            )

    def names(self) -> set[str]:
        """Base names (label-free) of every series ever created here."""
        with self._lock:
            return (
                {c.name for c in self._counters.values()}
                | {g.name for g in self._gauges.values()}
                | {h.name for h in self._histograms.values()}
            )

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict (picklable, JSON-able) copy of every series.

        The exchange format for worker→parent merges, fleet heartbeats,
        and tests: ``{"counters": {key: int}, "gauges": {key: float},
        "histograms": {key: {...}}}`` with label-expanded keys.
        """
        with self._lock:
            return {
                "counters": {
                    key: series.value for key, series in self._counters.items()
                },
                "gauges": {
                    key: series.value for key, series in self._gauges.items()
                },
                "histograms": {
                    key: series.to_dict()
                    for key, series in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a snapshot (from a worker, a heartbeat, another process)
        into this registry: counters and histograms add, gauges overwrite.
        """
        with self._lock:
            for key, value in (snapshot.get("counters") or {}).items():
                name, labels = _parse_key(key)
                self.counter(name, labels).inc(int(value))
            for key, value in (snapshot.get("gauges") or {}).items():
                name, labels = _parse_key(key)
                self.gauge(name, labels).set(float(value))
            for key, data in (snapshot.get("histograms") or {}).items():
                name, labels = _parse_key(key)
                self.histogram(name, labels).merge(data)

    def delta(self, previous: Optional[dict[str, Any]]) -> dict[str, Any]:
        """What changed since ``previous`` (an earlier :meth:`snapshot`);
        see :func:`snapshot_delta`."""
        return snapshot_delta(previous, self.snapshot())

    # -- rendering ---------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Counters and gauges render directly; histograms render as
        summaries (``{quantile="0.5|0.9|0.99"}`` plus ``_sum``/``_count``)
        since log buckets do not map onto Prometheus' cumulative ``le``
        convention without inventing boundaries.
        """
        from repro.obs.catalog import help_text

        lines: list[str] = []
        with self._lock:
            for kind, table in (
                ("counter", self._counters),
                ("gauge", self._gauges),
            ):
                seen: set[str] = set()
                for key in sorted(table):
                    series = table[key]
                    if series.name not in seen:
                        seen.add(series.name)
                        lines.append(f"# HELP {series.name} {help_text(series.name)}")
                        lines.append(f"# TYPE {series.name} {kind}")
                    lines.append(f"{key} {_format_value(series.value)}")
            seen = set()
            for key in sorted(self._histograms):
                series = self._histograms[key]
                if series.name not in seen:
                    seen.add(series.name)
                    lines.append(f"# HELP {series.name} {help_text(series.name)}")
                    lines.append(f"# TYPE {series.name} summary")
                for q in (0.5, 0.9, 0.99):
                    labels = dict(series.labels)
                    labels["quantile"] = str(q)
                    value = series.quantile(q) if series.count else 0.0
                    lines.append(
                        f"{_key(series.name, labels)} {_format_value(value)}"
                    )
                lines.append(f"{series.name}_sum {_format_value(series.sum)}")
                lines.append(f"{series.name}_count {series.count}")
        return "\n".join(lines) + "\n"


def snapshot_delta(
    previous: Optional[dict[str, Any]], current: dict[str, Any]
) -> dict[str, Any]:
    """The change between two registry snapshots.

    Counters and histogram buckets are subtracted; gauges ship their
    current value.  This is the fleet-heartbeat payload: merging a
    sequence of deltas reconstructs the worker's totals exactly, without
    double counting when a beat is retried or skipped.
    """
    if not previous:
        return current
    prev_counters = previous.get("counters") or {}
    prev_hists = previous.get("histograms") or {}
    counters = {
        key: value - prev_counters.get(key, 0)
        for key, value in current["counters"].items()
        if value != prev_counters.get(key, 0)
    }
    histograms = {}
    for key, data in current["histograms"].items():
        prev = prev_hists.get(key)
        if prev is None:
            histograms[key] = data
            continue
        if data["count"] == prev["count"]:
            continue
        prev_buckets = prev.get("buckets") or {}
        histograms[key] = {
            "count": data["count"] - prev["count"],
            "sum": data["sum"] - prev["sum"],
            "zero": data["zero"] - prev["zero"],
            "buckets": {
                index: n - prev_buckets.get(index, 0)
                for index, n in data["buckets"].items()
                if n != prev_buckets.get(index, 0)
            },
        }
    return {
        "counters": counters,
        "gauges": current["gauges"],
        "histograms": histograms,
    }


def _format_value(value: float) -> str:
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _parse_key(key: str) -> tuple[str, Optional[dict[str, str]]]:
    """Invert :func:`_key`: ``'name{a="b"}'`` → ``("name", {"a": "b"})``."""
    if "{" not in key:
        return key, None
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for item in rest.rstrip("}").split(","):
        if not item:
            continue
        label, _, value = item.partition("=")
        labels[label] = value.strip('"')
    return name, labels


class RegistryStats:
    """An attribute-compatible counter block backed by a registry.

    The pre-observability service kept ad-hoc dataclass counters
    (``FleetStats``, ``SchedulerStats``) that ``/status`` serialised and
    tests assert on as plain attributes.  Subclasses map each attribute
    to a registry counter (``_FIELDS = {"leases": "repro_fleet_leases_total",
    ...}``) so the *same storage* feeds ``stats.leases`` reads,
    ``stats.leases += 1`` writes, ``/status`` counter blocks, and the
    ``/metrics`` exposition — the two surfaces can no longer disagree.
    """

    _FIELDS: dict[str, str] = {}

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        for metric in self._FIELDS.values():
            self.registry.counter(metric)

    def __getattr__(self, name: str) -> int:
        metric = type(self)._FIELDS.get(name)
        if metric is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        return self.registry.counter(metric).value

    def __setattr__(self, name: str, value: Any) -> None:
        metric = type(self)._FIELDS.get(name)
        if metric is None:
            object.__setattr__(self, name, value)
            return
        series = self.registry.counter(metric)
        series.inc(int(value) - series.value)

    def to_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def __repr__(self) -> str:  # mirrors the old dataclass repr
        inner = ", ".join(f"{k}={v}" for k, v in self.to_dict().items())
        return f"{type(self).__name__}({inner})"
