"""Span-based tracing for the campaign service.

A :class:`Tracer` collects :class:`Span` records — named, parented,
timed intervals with attributes and point events — covering the job →
shard-lease → attack → trial-batch → checkpoint-fork lifecycle.  Spans
are assembled two ways:

* **inline**, via ``with tracer.span("compile", scheme="ancode"):`` —
  nesting is tracked with a :mod:`contextvars` stack, so spans opened in
  the same (coroutine/thread) context parent automatically;
* **from the event stream**, via :class:`JobTraceRecorder` — the
  scheduler already publishes a deterministic per-job event sequence
  (``attack-started``, ``batch``, ``shard-stolen``, ...); the recorder
  folds that stream into spans, stamping arrival times.  Nothing on the
  engine's fast path is touched: tracing consumes events that exist
  anyway.

Span ids are small sequential integers (deterministic given the event
order); timestamps are milliseconds relative to the trace epoch, so a
trace is self-contained and diffs cleanly.  Wall-clock durations live
*only* in traces and metrics — never in campaign reports, which stay
byte-identical with tracing on (the CI-gated invariant).

Export is NDJSON (one span per line, :meth:`Tracer.to_ndjson`) and the
service persists finished traces into the result store (schema v3), so
``GET /jobs/<id>/trace`` works across restarts.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

_current_span: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One named, timed interval in a trace."""

    __slots__ = ("span_id", "parent_id", "name", "start_ms", "end_ms", "attrs", "events")

    def __init__(
        self,
        span_id: int,
        name: str,
        parent_id: Optional[int],
        start_ms: float,
        attrs: dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs
        self.events: list[dict[str, Any]] = []

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attrs": dict(self.attrs),
            "events": list(self.events),
        }


class Tracer:
    """Collects spans; thread-safe; deterministic ids.

    ``clock`` returns seconds (monotonic); the default anchors
    ``time.perf_counter`` at construction so every timestamp is relative
    to the trace epoch.  Tests inject a fake clock for exact output.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        if clock is None:
            epoch = time.perf_counter()
            clock = lambda: time.perf_counter() - epoch  # noqa: E731
        self._clock = clock
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: list[Span] = []

    def _now_ms(self) -> float:
        return round(self._clock() * 1e3, 3)

    # -- manual span management (cross-thread safe) -------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span with an explicit parent (``None`` = root-level).
        Use this across threads, where the contextvar stack of
        :meth:`span` does not follow."""
        with self._lock:
            span = Span(
                self._next_id,
                name,
                parent.span_id if parent is not None else None,
                self._now_ms(),
                attrs,
            )
            self._next_id += 1
            self.spans.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> None:
        with self._lock:
            span.attrs.update(attrs)
            if span.end_ms is None:
                span.end_ms = self._now_ms()

    def add_event(self, span: Span, name: str, **attrs: Any) -> None:
        with self._lock:
            span.events.append(
                {"name": name, "at_ms": self._now_ms(), "attrs": attrs}
            )

    # -- inline nesting -----------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("compile"):`` — nests under the innermost
        open span of the current context."""
        parent = _current_span.get()
        span = self.start_span(name, parent=parent, **attrs)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException as exc:
            self.end(span, error=f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _current_span.reset(token)
            self.end(span)

    # -- export -------------------------------------------------------------
    def export(self) -> list[dict[str, Any]]:
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def to_ndjson(self) -> str:
        return "".join(
            json.dumps(span, sort_keys=True) + "\n" for span in self.export()
        )

    @staticmethod
    def from_ndjson(text: str) -> list[dict[str, Any]]:
        return [json.loads(line) for line in text.splitlines() if line.strip()]


#: Heavy result fields stripped before a span stores an attack tally.
_BULKY_RESULT_FIELDS = ("records", "outcomes", "wrong_codes", "transients")


class JobTraceRecorder:
    """Folds one job's scheduler event stream into a span tree.

    The scheduler feeds every published event (``on_event``) from its
    event-loop thread, so no locking subtleties arise beyond the
    tracer's own.  The resulting tree::

        job <id>
        ├── compile            (recorded by the runner thread, explicit parent)
        ├── attack[0] <label>  (attack-started → attack-finished)
        │     • batch ...      (point events, one per merged trial batch)
        │     • shard-stolen / shard-retried / shard-resumed
        └── attack[1] ...

    Lifecycle events (queued/started/finished/failed/cancelled) land on
    the job root span, which closes at :meth:`finish`.
    """

    def __init__(self, job_id: str, tracer: Optional[Tracer] = None):
        self.job_id = job_id
        self.tracer = tracer if tracer is not None else Tracer()
        self.root = self.tracer.start_span("job", job_id=job_id)
        self._attacks: dict[int, Span] = {}
        self._finished = False

    # -- explicit runner-thread spans ---------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """A child of the job root with an explicit parent link — safe
        from runner threads, where the contextvar stack does not follow."""
        span = self.tracer.start_span(name, parent=self.root, **attrs)
        try:
            yield span
        finally:
            self.tracer.end(span)

    # -- event-stream folding -----------------------------------------------
    def on_event(self, payload: dict[str, Any]) -> None:
        kind = payload.get("event")
        if kind == "attack-started":
            index = int(payload.get("index", 0))
            # A re-lease after a steal re-enters here: keep one span per
            # attack, note the extra attempt as an event.
            span = self._attacks.get(index)
            if span is None:
                self._attacks[index] = self.tracer.start_span(
                    "attack",
                    parent=self.root,
                    index=index,
                    attack=payload.get("attack"),
                    suite=payload.get("suite"),
                )
            else:
                self.tracer.add_event(
                    span,
                    "re-leased",
                    worker=payload.get("worker"),
                    attempt=payload.get("attempt"),
                )
            if payload.get("worker") is not None:
                self.tracer.add_event(
                    self._attacks[index],
                    "leased",
                    worker=payload.get("worker"),
                    attempt=payload.get("attempt"),
                )
        elif kind == "attack-finished":
            index = int(payload.get("index", 0))
            span = self._attacks.get(index)
            if span is None:  # resumed shard: finished without a start
                span = self._attacks[index] = self.tracer.start_span(
                    "attack",
                    parent=self.root,
                    index=index,
                    attack=payload.get("attack"),
                )
            result = dict(payload.get("result") or {})
            tally = {
                key: value
                for key, value in result.items()
                if key not in _BULKY_RESULT_FIELDS
            }
            self.tracer.end(span, worker=payload.get("worker"), **tally)
        elif kind == "batch":
            span = self._attacks.get(self._open_attack_index())
            if span is not None:
                self.tracer.add_event(
                    span,
                    "batch",
                    batches_done=payload.get("batches_done"),
                    trials_done=payload.get("trials_done"),
                    trial_count=payload.get("trial_count"),
                )
        elif kind in ("shard-stolen", "shard-retried", "shard-resumed"):
            index = payload.get("index")
            span = self._attacks.get(index) if index is not None else None
            self.tracer.add_event(
                span if span is not None else self.root,
                kind,
                worker=payload.get("worker"),
                attempts=payload.get("attempts"),
                error=payload.get("error"),
            )
        elif kind in ("queued", "started"):
            self.tracer.add_event(self.root, kind)
        elif kind in ("finished", "failed", "cancelled"):
            self.finish(kind, error=payload.get("error"))

    def _open_attack_index(self) -> int:
        for index in sorted(self._attacks, reverse=True):
            if self._attacks[index].end_ms is None:
                return index
        return -1

    def finish(self, state: str, error: Optional[str] = None) -> None:
        if self._finished:
            return
        self._finished = True
        for span in self._attacks.values():
            if span.end_ms is None:
                self.tracer.end(span, interrupted=True)
        attrs: dict[str, Any] = {"state": state}
        if error:
            attrs["error"] = error
        self.tracer.end(self.root, **attrs)

    def export(self) -> list[dict[str, Any]]:
        return self.tracer.export()
