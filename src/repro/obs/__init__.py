"""repro.obs — unified metrics, tracing, and profiling (S15).

One observability layer threaded through the engine, the service, and
the fleet:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and streaming-quantile histograms; picklable snapshots that
  merge across forked trial workers and fleet heartbeats; Prometheus
  text rendering for ``GET /metrics``.
* :mod:`repro.obs.trace` — :class:`Tracer` spans over the job →
  shard-lease → attack → trial-batch lifecycle, NDJSON export, persisted
  per job in the result store (schema v3) and served by
  ``GET /jobs/<id>/trace``.
* :mod:`repro.obs.profile` — :class:`EngineProfiler` samples the
  engine's own counters (trial scheduler stats, compile-cache hit
  rates, pool rebuilds) at batch/attack boundaries, so the no-hook
  trial fast loop stays untouched.
* :mod:`repro.obs.catalog` — the declared-series table backing
  ``# HELP`` text and the docs-completeness test.

Two invariants, both CI-gated: instrumentation adds no wall-clock value
to any compared artifact (campaign reports stay byte-identical with
tracing on), and metrics-enabled campaign throughput stays within 5 %
of metrics-off (``benchmarks/bench_obs_overhead.py``).

See ``docs/observability.md`` for the metric catalogue, the trace
schema, and the ``python -m repro.service top`` walkthrough.
"""

from repro.obs.catalog import CATALOG, help_text, metric_type
from repro.obs.metrics import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryStats,
    quantile,
    snapshot_delta,
)
from repro.obs.profile import ENGINE_COUNTERS, EngineProfiler
from repro.obs.trace import JobTraceRecorder, Span, Tracer

__all__ = [
    "BUCKETS_PER_DECADE",
    "CATALOG",
    "Counter",
    "ENGINE_COUNTERS",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "JobTraceRecorder",
    "MetricsRegistry",
    "RegistryStats",
    "Span",
    "Tracer",
    "help_text",
    "metric_type",
    "quantile",
    "snapshot_delta",
]
