"""The public metric catalogue: every series name, its type, its help.

One table, three consumers:

* :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` takes the
  ``# HELP`` text from here;
* ``docs/observability.md`` documents every entry — the documentation
  test (:mod:`tests.test_docs_snippets`) fails when a catalogue entry is
  missing from the page, the same contract the fault-model reference has;
* tests assert that everything a live service exposes on ``/metrics``
  appears here, so an undeclared series cannot ship.

Counters follow the Prometheus ``_total`` suffix convention; histograms
render as summaries (p50/p90/p99).  Label dimensions (``state=``,
``action=``) are noted in the help text.
"""

from __future__ import annotations

#: name -> (type, help).  Types: "counter" | "gauge" | "histogram".
CATALOG: dict[str, tuple[str, str]] = {
    # -- engine (trial execution; merged in from forked workers and fleet
    # -- heartbeats, so these are totals across every process that worked
    # -- for this service) --------------------------------------------------
    "repro_engine_trials_total": (
        "counter", "Fault trials executed (all engines, all workers)."
    ),
    "repro_engine_trials_forked_total": (
        "counter", "Trials served by checkpoint forking (vs full re-runs)."
    ),
    "repro_engine_trials_short_circuited_total": (
        "counter",
        "Trials answered from the golden suffix without simulating.",
    ),
    "repro_engine_instructions_total": (
        "counter", "Instructions actually simulated by trials."
    ),
    "repro_engine_cycles_total": (
        "counter", "Cycles actually simulated by trials."
    ),
    "repro_engine_superblock_blocks_total": (
        "counter",
        "Compiled traces entered by superblock-engine trials.",
    ),
    "repro_engine_superblock_deopt_steps_total": (
        "counter",
        "Instructions the superblock engine single-stepped (deoptimised "
        "around open fault windows and near-timeout tails).",
    ),
    "repro_engine_batch_retries_total": (
        "counter", "Trial batches resubmitted after a worker-pool rebuild."
    ),
    "repro_engine_checkpoints": (
        "gauge", "Checkpoints held by the most recently sampled scheduler."
    ),
    "repro_engine_checkpoint_interval": (
        "gauge",
        "Retired-instruction spacing of the sampled scheduler's checkpoint "
        "ladder (doubles when the ladder thins).",
    ),
    "repro_engine_dirty_pages": (
        "gauge", "Dirty pages on the sampled scheduler's trial CPU."
    ),
    "repro_engine_batch_seconds": (
        "histogram", "Wall-clock seconds per merged trial batch."
    ),
    # -- compile cache -------------------------------------------------------
    "repro_compile_seconds": (
        "histogram", "Wall-clock seconds per service-side compile call."
    ),
    "repro_compile_cache_hits": (
        "gauge", "Workbench compile-cache hits (lifetime of the workbench)."
    ),
    "repro_compile_cache_misses": (
        "gauge", "Workbench compile-cache misses (real compilations)."
    ),
    "repro_compile_cache_programs": (
        "gauge", "Programs currently resident in the Workbench LRU."
    ),
    # -- job queue -----------------------------------------------------------
    "repro_jobs_submitted_total": ("counter", "Jobs accepted onto the queue."),
    "repro_jobs_executed_total": ("counter", "Jobs executed to completion."),
    "repro_jobs_failed_total": ("counter", "Jobs that ended in failure."),
    "repro_jobs_cancelled_total": ("counter", "Jobs cancelled before finishing."),
    "repro_jobs_deduplicated_inflight_total": (
        "counter", "Submissions answered by an already-queued/running job."
    ),
    "repro_jobs_deduplicated_store_total": (
        "counter", "Submissions answered from the persistent result store."
    ),
    "repro_queue_depth": ("gauge", "Jobs waiting on the scheduler queue."),
    "repro_jobs_inflight": ("gauge", "Jobs queued or running right now."),
    "repro_runners": ("gauge", "Configured runner slots."),
    "repro_trial_workers": ("gauge", "Configured trial worker processes per slot."),
    "repro_store_jobs": (
        "gauge", "Jobs in the persistent ledger, by state= label."
    ),
    "repro_job_seconds": (
        "histogram", "Wall-clock seconds per executed job."
    ),
    "repro_traces_total": ("counter", "Job traces recorded to the store."),
    # -- fleet ---------------------------------------------------------------
    "repro_fleet_leases_total": ("counter", "Shard leases handed to workers."),
    "repro_fleet_heartbeats_total": ("counter", "Shard lease renewals received."),
    "repro_fleet_shards_completed_total": (
        "counter", "Shard results accepted (first completion per shard)."
    ),
    "repro_fleet_duplicates_total": (
        "counter", "Duplicate shard completions dropped by the idempotent merge."
    ),
    "repro_fleet_retries_total": (
        "counter", "Worker-reported shard failures that were re-queued."
    ),
    "repro_fleet_steals_total": (
        "counter", "Expired leases returned to the pool (work-stealing)."
    ),
    "repro_fleet_local_shards_total": (
        "counter", "Shards the coordinator degraded to local execution."
    ),
    "repro_fleet_resumed_shards_total": (
        "counter", "Shards answered from the store after a restart."
    ),
    "repro_fleet_workers_active": (
        "gauge", "Workers heard from within the worker TTL."
    ),
    "repro_fleet_shards": (
        "gauge", "Live shard-table entries, by state= label."
    ),
    # -- fleet worker (one series per FleetRunner; heartbeats roll them up
    # -- into the coordinator's registry) ------------------------------------
    "repro_worker_leases_total": ("counter", "Shard leases this worker took."),
    "repro_worker_shards_done_total": (
        "counter", "Shards this worker completed and had accepted."
    ),
    "repro_worker_shards_failed_total": (
        "counter", "Shards this worker failed or could not deliver."
    ),
    # -- service chaos harness ----------------------------------------------
    "repro_chaos_decisions_total": (
        "counter",
        "Chaos-proxy decisions, by action= label (pass/drop/delay/duplicate).",
    ),
}


def help_text(name: str) -> str:
    """The catalogue help line for ``name`` (a placeholder when the
    series is not declared — tests flag those)."""
    entry = CATALOG.get(name)
    return entry[1] if entry is not None else "undocumented series"


def metric_type(name: str) -> str:
    entry = CATALOG.get(name)
    return entry[0] if entry is not None else "untyped"
