"""Sampled engine profiling: where do the simulated cycles go?

The trial fast loop (checkpoint fork → run → classify) must stay
hook-free — PR 6's CI gate holds its throughput to spec.  So profiling
*samples* instead of instrumenting: every interesting engine object
already keeps cheap counters for its own purposes
(:class:`~repro.faults.scheduler.SchedulerStats`, the Workbench cache
hit/miss pair, :attr:`CampaignExecutor.batch_retries`), and
:class:`EngineProfiler` reads them at natural boundaries — after an
attack, after a batch, on a heartbeat — folding the *deltas* into a
:class:`~repro.obs.metrics.MetricsRegistry`.

Sampling at boundaries means the registry always reflects completed
work (no torn reads mid-trial) and costs nothing while trials run.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry

#: SchedulerStats field -> counter series (monotonic; sampled as deltas).
ENGINE_COUNTERS: dict[str, str] = {
    "trials": "repro_engine_trials_total",
    "forked": "repro_engine_trials_forked_total",
    "short_circuited": "repro_engine_trials_short_circuited_total",
    "simulated_instructions": "repro_engine_instructions_total",
    "simulated_cycles": "repro_engine_cycles_total",
    "superblock_blocks": "repro_engine_superblock_blocks_total",
    "superblock_deopt_steps": "repro_engine_superblock_deopt_steps_total",
}


class EngineProfiler:
    """Folds engine-object counters into a registry, delta-safely.

    One profiler per registry owner (scheduler slot, fleet worker).
    ``sample_*`` methods are idempotent between engine progress: sampling
    twice adds nothing, so callers can sample opportunistically.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Last-seen stats per scheduler, keyed by object id.  Schedulers
        #: are memoized for the life of their program, so ids are stable
        #: exactly as long as the entry matters; deltas are clamped at 0
        #: in case an id is ever reused by a fresh scheduler.
        self._seen: dict[int, dict[str, int]] = {}
        self._executor_retries: dict[int, int] = {}

    # -- trial schedulers ---------------------------------------------------
    def sample_scheduler(self, scheduler: Any) -> None:
        """Fold one :class:`~repro.faults.scheduler.TrialScheduler`'s
        stats into the registry (counters as deltas, ladder shape as
        gauges)."""
        stats = scheduler.stats
        previous = self._seen.get(id(scheduler), {})
        current: dict[str, int] = {}
        for field, series in ENGINE_COUNTERS.items():
            value = int(getattr(stats, field, 0))
            current[field] = value
            delta = value - previous.get(field, 0)
            if delta > 0:
                self.registry.counter(series).inc(delta)
        self._seen[id(scheduler)] = current
        self.registry.gauge("repro_engine_checkpoints").set(stats.checkpoints)
        self.registry.gauge("repro_engine_checkpoint_interval").set(stats.interval)
        dirty = getattr(
            getattr(scheduler, "_trial_cpu", None), "_dirty_pages", None
        )
        if dirty is not None:
            self.registry.gauge("repro_engine_dirty_pages").set(len(dirty))

    def sample_program(self, program: Any) -> None:
        """Sample every scheduler memoized on a compiled program — the
        after-attack boundary for the in-process fork engine, whose fast
        loop carries no hooks at all."""
        for scheduler in dict(getattr(program, "_schedulers", {}) or {}).values():
            self.sample_scheduler(scheduler)

    # -- compile cache ------------------------------------------------------
    def sample_workbench(self, workbench: Any) -> None:
        self.registry.gauge("repro_compile_cache_hits").set(workbench.hits)
        self.registry.gauge("repro_compile_cache_misses").set(workbench.misses)
        self.registry.gauge("repro_compile_cache_programs").set(
            workbench.cached_programs
        )

    # -- trial executors ----------------------------------------------------
    def sample_executor(self, executor: Any) -> None:
        """Fold a :class:`~repro.toolchain.executor.CampaignExecutor`'s
        pool-rebuild counter in (its per-batch engine counters arrive via
        the worker snapshot merge, not here)."""
        retries = int(getattr(executor, "batch_retries", 0))
        previous = self._executor_retries.get(id(executor), 0)
        if retries > previous:
            self.registry.counter("repro_engine_batch_retries_total").inc(
                retries - previous
            )
        self._executor_retries[id(executor)] = retries
