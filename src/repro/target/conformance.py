"""Target conformance kit: what every registered target must prove.

``tests/target_conformance.py`` parametrises these checks over all
registered targets; third-party targets run the same kit::

    from repro.target.conformance import run_conformance
    run_conformance(my_target)   # raises ConformanceError with specifics

Checks (one function each, composable):

* :func:`check_encoding_roundtrip` — every sample instruction has a
  width from the target's advertised set, stable (pure) across queries,
  renders deterministic non-empty text, and decodes to a bound handler
  through the target's dispatch table.
* :func:`check_cycle_model` — every charge is a non-negative int,
  division costs are bounded at their probe extremes, and — on a real
  compiled workload — the timeout boundary is sharp: a budget of
  ``golden.cycles`` completes, and within one instruction charge below
  it every budget either reproduces the golden run exactly or times out.
* :func:`check_snapshot_restore` — a mid-block snapshot restored onto a
  fresh CPU replays the suffix to the identical final result.
* :func:`check_dispatch_parity` — the reference isinstance interpreter
  and the decode-cached dispatcher agree on golden runs.
* :func:`check_cfi_retire_order` — the CFI monitor's retire hook
  observes the same retirement sequence on both dispatchers and the
  protected program completes cleanly.

Every failure raises :class:`ConformanceError` naming the target and
the violated contract — a broken target fails loudly, never silently.
"""

from __future__ import annotations

from repro.isa import instructions as ins
from repro.target.base import Target

#: Small branchy workload every execution-level check compiles per
#: target: two comparisons (signed + equality), a bounded loop, and a
#: call, exercising fused/flag branch lowering either way.
_WORKLOAD = """
u32 helper(u32 x) { if (x > 9) { return x - 9; } return x; }
protect u32 f(u32 a, u32 b) {
    u32 acc = 0;
    for (u32 i = 0; i < 5; i += 1) { acc += helper(a + i); }
    if (acc == b) { return 1; }
    if (acc < b) { return 2; }
    return 3;
}
"""
_ARGS = [7, 45]


class ConformanceError(AssertionError):
    """A target violated the conformance contract."""


def _fail(target: Target, contract: str, detail: str) -> None:
    raise ConformanceError(
        f"target {target.name!r} violates the {contract} contract: {detail}"
    )


def _compiled(target: Target, scheme: str = "ancode"):
    from repro.minic.driver import compile_source
    from repro.toolchain import CompileConfig

    return compile_source(
        _WORKLOAD, config=CompileConfig(scheme=scheme, target=target.name)
    )


# ---------------------------------------------------------------------------
def check_encoding_roundtrip(target: Target) -> None:
    """Width/text/decode roundtrip for every sample instruction."""
    samples = target.sample_instructions()
    if not samples:
        _fail(target, "encoding", "sample_instructions() returned no samples")
    table = target.dispatch_table()
    for instr in samples:
        # Branch targets and literal-pool loads need resolved layout
        # before binding, exactly as the assembler leaves them.
        if hasattr(instr, "target"):
            instr.target = 0x200
        if getattr(instr, "resolved", 0) is None:
            instr.resolved = 0x1234
        try:
            w = target.width(instr)
        except Exception as exc:
            _fail(target, "encoding", f"width({instr!r}) raised {exc!r}")
        if w not in target.widths:
            _fail(
                target,
                "encoding",
                f"width({instr!r}) = {w!r}, not in advertised widths "
                f"{target.widths}",
            )
        if target.width(instr) != w:
            _fail(target, "encoding", f"width({instr!r}) is not pure")
        text = instr.text()
        if not text or not isinstance(text, str):
            _fail(target, "encoding", f"{instr!r}.text() = {text!r}")
        if text != instr.text():
            _fail(target, "encoding", f"{instr!r}.text() is not stable")
        binder = table.get(type(instr))
        if binder is None:
            _fail(
                target,
                "decode",
                f"no dispatch-table binder for {type(instr).__name__}",
            )
        handler = binder(instr, 0x100, 0x100 + w)
        if not callable(handler):
            _fail(target, "decode", f"binder for {instr!r} returned {handler!r}")
    # The target's conditional-branch classes must all be Bcc family so
    # golden traces index them under the branch mnemonic.
    for cls in target.branch_classes():
        if not issubclass(cls, ins.Bcc):
            _fail(
                target,
                "decode",
                f"branch class {cls.__name__} is not a Bcc subclass",
            )


# ---------------------------------------------------------------------------
def check_cycle_model(target: Target) -> None:
    """Non-negative charges; exact timeout boundary on a real workload."""
    model = target.cycle_model()
    charges = {
        "alu": model.alu(),
        "mul": model.mul(),
        "mla": model.mla(),
        "umull": model.umull(),
        "umod": model.umod(),
        "load": model.load(),
        "store": model.store(),
        "branch_taken": model.branch_taken(),
        "branch_not_taken": model.branch_not_taken(),
        "misprediction": model.misprediction(),
        "call": model.call(),
        "ret": model.ret(),
        "nop": model.nop(),
        "push_pop(4)": model.push_pop(4),
    }
    for name, value in charges.items():
        if not isinstance(value, int) or value < 0:
            _fail(target, "cycle-model", f"{name} charge is {value!r}")
    for a, b in ((0, 0), (1, 1), (0xFFFFFFFF, 1), (0xFFFFFFFF, 0), (7, 3)):
        cost = model.div(a, b)
        if not isinstance(cost, int) or cost < 0:
            _fail(target, "cycle-model", f"div({a}, {b}) charge is {cost!r}")
    program = _compiled(target)
    golden = program.run("f", _ARGS)
    if not golden.ok:
        _fail(target, "cycle-model", f"workload golden run failed: {golden}")
    exact = program.run("f", _ARGS, max_cycles=golden.cycles)
    if exact != golden:
        _fail(
            target,
            "cycle-model",
            f"budget of exactly golden.cycles ({golden.cycles}) did not "
            f"reproduce the golden run: {exact}",
        )
    # The engine checks the budget at fetch boundaries, so the sharp
    # completion boundary sits at most one instruction charge below
    # golden.cycles: every budget above it must reproduce the golden run
    # bit-for-bit, the first one at-or-below it must report a timeout.
    boundary = None
    for budget in range(golden.cycles - 1, max(golden.cycles - 65, -1), -1):
        result = program.run("f", _ARGS, max_cycles=budget)
        if result.status.value == "timeout":
            boundary = budget
            break
        if result != golden:
            _fail(
                target,
                "cycle-model",
                f"completing budget {budget} diverged from the golden run: "
                f"{result} != {golden}",
            )
    if boundary is None:
        _fail(
            target,
            "cycle-model",
            f"no budget within 64 cycles below golden.cycles "
            f"({golden.cycles}) timed out — the cycle counter is not "
            f"enforcing the budget",
        )


# ---------------------------------------------------------------------------
def check_snapshot_restore(target: Target) -> None:
    """Mid-block snapshot/restore identity."""
    from repro.isa.cpu import CpuSnapshot

    program = _compiled(target)
    cpu = program.prepare_cpu("f", _ARGS, track_pages=True)
    partial = cpu.run(10_000_000, stop_at_instruction=40)
    if partial.instructions != 40:
        _fail(
            target,
            "snapshot",
            f"stop_at_instruction=40 stopped at {partial.instructions}",
        )
    snap = cpu.snapshot()
    if not isinstance(snap, CpuSnapshot):
        _fail(target, "snapshot", f"snapshot() returned {type(snap).__name__}")
    if snap.version != target.snapshot_version:
        _fail(
            target,
            "snapshot",
            f"snapshot schema v{snap.version} != target's advertised "
            f"v{target.snapshot_version}",
        )
    final = cpu.run(10_000_000)
    clone = program.prepare_cpu("f", _ARGS)
    clone.restore(snap)
    resumed = clone.run(10_000_000)
    if resumed != final:
        _fail(
            target,
            "snapshot",
            f"restored suffix diverged: {resumed} != {final}",
        )


# ---------------------------------------------------------------------------
def check_dispatch_parity(target: Target) -> None:
    """Reference interpreter vs decode-cached dispatch golden parity."""
    for scheme in ("none", "ancode"):
        program = _compiled(target, scheme)
        for args in (_ARGS, [3, 0], [200, 1000]):
            reference = program.run("f", args, dispatch="reference")
            cached = program.run("f", args, dispatch="cached")
            if reference != cached:
                _fail(
                    target,
                    "dispatch-parity",
                    f"scheme {scheme}, args {args}: reference {reference} "
                    f"!= cached {cached}",
                )


# ---------------------------------------------------------------------------
def check_cfi_retire_order(target: Target) -> None:
    """CFI retire hooks observe one ordered retirement stream."""
    if not target.supports_cfi():
        _fail(target, "cfi", "target opts out of CFI; nothing to check")
    program = _compiled(target, "ancode")

    def retirements(dispatch: str) -> list[str]:
        seen: list[str] = []
        cpu = program.prepare_cpu("f", _ARGS, dispatch=dispatch)
        cpu.retire_hooks.append(
            lambda cpu, instr, events: seen.append(instr.mnemonic)
        )
        result = cpu.run(10_000_000)
        if not result.ok:
            _fail(target, "cfi", f"protected run failed on {dispatch}: {result}")
        return seen

    reference = retirements("reference")
    cached = retirements("cached")
    if reference != cached:
        _fail(
            target,
            "cfi",
            "retire-hook streams differ between dispatchers "
            f"(first divergence at index "
            f"{next(i for i, (a, b) in enumerate(zip(reference, cached)) if a != b)})",
        )
    if target.branch_mnemonic not in reference:
        _fail(
            target,
            "cfi",
            f"no {target.branch_mnemonic!r} retirement observed in a "
            f"branchy protected workload",
        )


#: name -> check, in dependency-ish order (structural first).
ALL_CHECKS = {
    "encoding-roundtrip": check_encoding_roundtrip,
    "cycle-model": check_cycle_model,
    "snapshot-restore": check_snapshot_restore,
    "dispatch-parity": check_dispatch_parity,
    "cfi-retire-order": check_cfi_retire_order,
}


def run_conformance(target: Target) -> list[str]:
    """Run every check; returns the names that passed, raises on the
    first violation."""
    passed = []
    for name, check in ALL_CHECKS.items():
        check(target)
        passed.append(name)
    return passed
