"""The default target: the Thumb-2-flavoured machine the repo grew up on.

Byte-identical to the pre-``repro.target`` stack by construction — it
wraps the original width model (:mod:`repro.isa.encoding`) and cycle
model (:mod:`repro.isa.cycles`) without touching either, and the
byte-identity pin in ``tests/test_engine_equivalence.py`` holds it to
that against checked-in pre-refactor fixtures.
"""

from __future__ import annotations

from repro.isa import instructions as ins
from repro.isa.cycles import CycleModel
from repro.isa.encoding import width as thumb2_width
from repro.target.base import Target, register_target


def _common_samples() -> list[ins.Instr]:
    """Instruction samples shared by both bundled targets (everything
    except the conditional-branch and compare lowering, which differ)."""
    return [
        ins.MovImm(0, 42),
        ins.MovImm(9, 70000),
        ins.MovReg(1, 2),
        ins.Movw(3, 0xBEEF),
        ins.Movt(3, 0xDEAD),
        ins.Mvn(4, 5),
        ins.Alu("add", 0, 1, 2, s=True),
        ins.Alu("sub", 8, 9, 10),
        ins.Alu("eor", 2, 2, 3, s=True),
        ins.AluImm("add", 0, 0, 4, s=True),
        ins.AluImm("sub", 13, 13, 16),
        ins.ShiftImm("lsl", 1, 1, 3),
        ins.ShiftReg("lsr", 2, 2, 4),
        ins.Mul(3, 4, 3),
        ins.Mla(5, 6, 7, 0),
        ins.Mls(5, 6, 7, 0),
        ins.Umull(0, 1, 2, 3),
        ins.Udiv(0, 1, 2),
        ins.Sdiv(0, 1, 2),
        ins.Umod(0, 1, 2),
        ins.B("somewhere"),
        ins.Bl("callee"),
        ins.BxLr(),
        ins.LdrImm(0, 1, 8),
        ins.LdrImm(0, 13, 4),
        ins.LdrReg(0, 1, 2),
        ins.StrImm(0, 1, 8, size=1),
        ins.StrReg(0, 1, 2, size=2),
        ins.Push((4, 5, 14)),
        ins.Pop((4, 5, 15)),
        ins.LdrLit(6, "pool0"),
        ins.Nop(),
        ins.Udf(0xE1),
    ]


class BaselineTarget(Target):
    name = "baseline"
    label = "Thumb-2 baseline"
    description = (
        "Cortex-M-flavoured machine: NZCV flags, cmp + b<cond> branches, "
        "Thumb-2 T1/T2 narrow encodings, the paper's cycle model."
    )
    flag_branches = True
    widths = (2, 4)

    def cycle_model(self) -> CycleModel:
        return CycleModel()

    def width(self, instr: ins.Instr) -> int:
        return thumb2_width(instr)

    def sample_instructions(self) -> list[ins.Instr]:
        samples = _common_samples()
        samples += [
            ins.CmpReg(0, 1),
            ins.CmpImm(2, 200),
            ins.Bcc("eq", "somewhere"),
            ins.Bcc("lt", "somewhere"),
        ]
        return samples


register_target(BaselineTarget())
