"""The :class:`Target` interface and its registry.

One instance per machine model.  Everything here is *descriptive* — the
simulator engines stay shared; a target parameterises them (widths,
cycle model, branch semantics) rather than replacing them, which is what
keeps the four result-identical engines result-identical per target.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.isa import instructions as ins
from repro.isa.cycles import CycleModel
from repro.isa.registers import LR, PC, SP


class UnknownTargetError(ValueError):
    """Lookup of a target name nobody registered."""


class DuplicateTargetError(ValueError):
    """Registration under a name that is already taken."""


class Target:
    """One machine model: encodings, registers, conditions, timing.

    Subclass and override; every attribute below is part of the contract
    the conformance kit (:mod:`repro.target.conformance`) enforces.
    """

    #: Registry key; ``CompileConfig(target=...)`` selects by this name.
    name: str = "?"
    #: Human-readable column label for side-by-side artefacts.
    label: str = ""
    description: str = ""

    # -- condition-code semantics -----------------------------------------
    #: True: conditional branches read the NZCV flags a preceding compare
    #: set (``cmp`` + ``b<cond>``).  False: the target is flagless and the
    #: backend lowers comparisons to fused register-compare branches
    #: (``b<cond> rn, rm, label``).
    flag_branches: bool = True
    #: Condition codes the backend may emit.
    conditions: tuple[str, ...] = ins.CONDITIONS

    # -- encodings ---------------------------------------------------------
    #: Encoding widths (bytes) the ISA admits; every ``width()`` result
    #: must be one of these.
    widths: tuple[int, ...] = (2, 4)

    # -- register file / calling convention --------------------------------
    #: All targets share the flat 16-register file of the simulator; the
    #: calling convention below is what the backend and ``prepare_cpu``
    #: assume when marshalling arguments and reading results.
    num_regs: int = 16
    arg_regs: tuple[int, ...] = (0, 1, 2, 3)
    ret_reg: int = 0
    callee_saved: tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10, 11)
    sp: int = SP
    lr: int = LR
    pc: int = PC

    # -- trace/analysis vocabulary -----------------------------------------
    #: Mnemonic golden traces record conditional branches under (the
    #: fused subclasses deliberately keep ``"bcc"`` so cross-target
    #: analyses index branches identically).
    branch_mnemonic: str = "bcc"
    #: Mnemonic that opens the encoded-dataflow window (the AN-code
    #: encode multiply) for :func:`repro.faults.isa_campaign.encoded_window`.
    encode_mnemonic: str = "mul"

    # -- snapshot schema ----------------------------------------------------
    #: Snapshot schema version the target's CPUs produce/accept.  All
    #: bundled targets share the engine-wide schema
    #: (:data:`repro.isa.cpu.SNAPSHOT_VERSION`); a target that extends
    #: architectural state must bump this and extend ``CpuSnapshot``.
    snapshot_version: int = 2

    # ------------------------------------------------------------------
    def cycle_model(self) -> CycleModel:
        """A fresh default cycle model for this target."""
        return CycleModel()

    def width(self, instr: ins.Instr) -> int:
        """Encoded size of ``instr`` in bytes."""
        raise NotImplementedError

    def dispatch_table(self) -> dict:
        """type -> handler binder used by the decode cache.

        The bundled targets share :data:`repro.isa.dispatch._BINDERS`
        (instruction *semantics* are target-independent; encodings and
        timing are not); exposed so the conformance kit can prove every
        sample instruction decodes.
        """
        from repro.isa.dispatch import _BINDERS

        return _BINDERS

    def branch_classes(self) -> tuple[type, ...]:
        """Exact conditional-branch classes this target's backend emits."""
        return (ins.Bcc,) if self.flag_branches else (ins.BccReg, ins.BccImm)

    def make_branch(self, cond: str, label: str) -> ins.Bcc:
        """A representative conditional branch (conformance/doc helper)."""
        if self.flag_branches:
            return ins.Bcc(cond, label)
        return ins.BccReg(cond, label, rn=0, rm=1)

    def sample_instructions(self) -> list[ins.Instr]:
        """At least one instance of every instruction class the backend
        can emit on this target — the conformance kit's roundtrip set."""
        raise NotImplementedError

    def supports_cfi(self) -> bool:
        """Whether the GPSA-based CFI monitor attaches to this target.
        All bundled targets retire through the shared hook protocol."""
        return True

    def validate(self) -> None:
        """Raise with a clear message when the target is malformed."""
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("target name must be a non-empty string")
        if not self.widths or any(
            not isinstance(w, int) or w <= 0 for w in self.widths
        ):
            raise ValueError(
                f"target {self.name!r}: widths must be positive ints, "
                f"got {self.widths!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Target {self.name}>"


_lock = threading.Lock()
_registry: dict[str, Target] = {}


def register_target(target: Target, *, replace: bool = False) -> Target:
    """Register ``target`` under ``target.name``."""
    target.validate()
    with _lock:
        if not replace and target.name in _registry:
            raise DuplicateTargetError(
                f"target {target.name!r} is already registered; "
                f"pass replace=True to override"
            )
        _registry[target.name] = target
    return target


def unregister_target(name: str) -> None:
    """Remove a registration (primarily for test cleanup)."""
    with _lock:
        if name not in _registry:
            raise UnknownTargetError(f"target {name!r} is not registered")
        del _registry[name]


def get_target(name: str) -> Target:
    """The registered :class:`Target` named ``name``."""
    target = _registry.get(name)
    if target is None:
        raise UnknownTargetError(
            f"unknown target {name!r}; registered targets: {list_targets()}"
        )
    return target


def list_targets() -> tuple[str, ...]:
    """All registered target names, in registration order."""
    return tuple(_registry)


def target_specs() -> tuple[Target, ...]:
    """All registered targets, in registration order."""
    return tuple(_registry.values())
