"""Machine-target registry: the multi-backend face of the simulator stack.

A :class:`Target` bundles everything the toolchain and the engines need
to know about one machine model — instruction encoding widths, register
file and calling convention, condition-code semantics (NZCV flags vs
fused register compares), the cycle model, the decode-cache dispatch
table, CFI retire behaviour, and the snapshot schema.  The pre-existing
Thumb-2-flavoured machine is the ``baseline`` target; ``rv32`` is a
RISC-V-flavoured second ISA with compressed/full-width encodings, no
flags (branches compare registers directly), and its own cycle model.

Select a target per compilation via
:class:`repro.toolchain.CompileConfig`::

    CompileConfig(scheme="ancode", target="rv32")

Register a third-party target::

    from repro.target import Target, register_target

    class MyTarget(Target):
        name = "mine"
        ...

    register_target(MyTarget())

and prove it with the conformance kit
(:mod:`repro.target.conformance`, driven by
``tests/target_conformance.py``).
"""

from __future__ import annotations

from repro.target.base import (
    DuplicateTargetError,
    Target,
    UnknownTargetError,
    get_target,
    list_targets,
    register_target,
    target_specs,
    unregister_target,
)
from repro.target.baseline import BaselineTarget
from repro.target.rv32 import Rv32CycleModel, Rv32Target

__all__ = [
    "BaselineTarget",
    "DuplicateTargetError",
    "Rv32CycleModel",
    "Rv32Target",
    "Target",
    "UnknownTargetError",
    "get_target",
    "list_targets",
    "register_target",
    "target_specs",
    "unregister_target",
]
