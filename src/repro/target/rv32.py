"""The rv32 target: a RISC-V-flavoured second ISA.

What changes relative to ``baseline`` — and what deliberately does not:

* **No flags.**  There is no NZCV state; the backend lowers every
  comparison to a fused register-compare branch
  (:class:`~repro.isa.instructions.BccReg` /
  :class:`~repro.isa.instructions.BccImm`, the ``beq x10, x11, label``
  shape), signed for lt/le/gt/ge and unsigned for lo/ls/hi/hs.  The
  fault models' branch-inversion glitch consequently lands in the CPU's
  one-shot ``branch_invert`` latch instead of forcing flags.
* **RVC-flavoured widths.**  Compressed (2-byte) forms for the common
  cases the C extension covers — small immediates, two-address ALU ops
  on low registers, word loads/stores with short offsets, ``c.j``/
  ``c.jr`` — and 4 bytes for everything else, branches included.
* **Its own cycle model** (:class:`Rv32CycleModel`): a small in-order
  RV32IMC-flavoured pipeline — slower iterative multiply/divide, single
  cycle stores, a 2-cycle taken-branch bubble, cheaper ``jal``/``jr``.
* **Shared everything else.**  The register file, memory map, MMIO,
  snapshot schema, CFI retire protocol, and all four execution engines
  are target-independent; Table III therefore compares scheme rankings,
  not simulator implementations.
"""

from __future__ import annotations

from repro.isa import instructions as ins
from repro.isa.cycles import CycleModel
from repro.isa.registers import SP, is_low
from repro.target.base import Target, register_target
from repro.target.baseline import _common_samples


class Rv32CycleModel(CycleModel):
    """RV32IMC-flavoured timing: small in-order core, M-extension
    iterative multiply/divide, compressed fetch."""

    def mul(self) -> int:
        return 4  # iterative M-extension multiplier

    def mla(self) -> int:
        return 5  # mul + accumulate (no fused MLA in RV32IM)

    def umull(self) -> int:
        return 4

    def div(self, dividend: int, divisor: int) -> int:
        """2 + one bit per quotient bit, capped: a radix-2 divider."""
        if divisor == 0:
            return 34
        quotient_bits = max(0, dividend.bit_length() - divisor.bit_length() + 1)
        return min(34, 2 + quotient_bits)

    def umod(self) -> int:
        return self.umod_cycles

    def store(self) -> int:
        return 1  # write buffer hides the store latency

    def branch_taken(self) -> int:
        return 2  # shallow pipeline: one bubble on redirect

    def branch_not_taken(self) -> int:
        return 1

    def misprediction(self) -> int:
        return 8

    def call(self) -> int:
        return 2  # jal: link + redirect

    def ret(self) -> int:
        return 2  # jr ra


class Rv32Target(Target):
    name = "rv32"
    label = "RV32IMC-flavoured"
    description = (
        "RISC-V-flavoured machine: flagless fused register-compare "
        "branches, RVC compressed/full-width encodings, iterative "
        "multiply/divide timing."
    )
    flag_branches = False
    widths = (2, 4)

    def cycle_model(self) -> CycleModel:
        return Rv32CycleModel()

    def width(self, instr: ins.Instr) -> int:
        """RVC-flavoured encoding widths (2 or 4 bytes)."""
        if isinstance(instr, ins.MovImm):
            return 2 if 0 <= instr.imm <= 31 else 4  # c.li imm6
        if isinstance(instr, (ins.MovReg, ins.Nop, ins.BxLr, ins.Udf)):
            return 2  # c.mv / c.nop / c.jr ra / c.ebreak
        if isinstance(instr, (ins.Mvn, ins.Movw, ins.Movt)):
            return 4
        if isinstance(instr, ins.Alu):
            # CA-format two-address ops on the compressed register set.
            if (
                instr.rd == instr.rn
                and is_low(instr.rd)
                and is_low(instr.rm)
                and instr.op in ("add", "sub", "and", "orr", "eor")
            ):
                return 2
            if instr.op == "add" and instr.rd == instr.rn:
                return 2  # c.add rd, rm (any registers)
            return 4
        if isinstance(instr, ins.AluImm):
            if instr.rn == SP and instr.op in ("add", "sub"):
                # c.addi4spn / c.addi16sp flavours.
                if instr.imm % 4 == 0 and instr.imm <= 1020:
                    return 2
                return 4
            if (
                instr.op in ("add", "sub")
                and instr.rd == instr.rn
                and 0 <= instr.imm <= 31
            ):
                return 2  # c.addi imm6
            return 4
        if isinstance(instr, ins.ShiftImm):
            return 2 if instr.rd == instr.rn and is_low(instr.rd) else 4
        if isinstance(instr, ins.ShiftReg):
            return 4
        if isinstance(
            instr,
            (ins.Mul, ins.Mla, ins.Mls, ins.Umull, ins.Udiv, ins.Sdiv, ins.Umod),
        ):
            return 4  # M extension: no compressed forms
        if isinstance(instr, (ins.CmpReg, ins.CmpImm)):
            return 4  # slt-flavoured; the rv32 backend never emits these
        # Fused branches before plain Bcc: BccReg/BccImm subclass Bcc.
        if isinstance(instr, (ins.BccReg, ins.BccImm)):
            return 4  # beq/bne/blt[u]/bge[u] are full-width
        if isinstance(instr, ins.Bcc):
            return 4
        if isinstance(instr, ins.B):
            distance = getattr(instr, "resolved_distance", None)
            if distance is None or -2048 <= distance < 2048:
                return 2  # c.j ±2 KiB
            return 4
        if isinstance(instr, ins.Bl):
            return 4  # jal
        if isinstance(instr, (ins.LdrImm, ins.StrImm)):
            if instr.size != 4:
                return 4  # no compressed sub-word accesses
            if instr.rn == SP:
                ok = instr.imm % 4 == 0 and 0 <= instr.imm <= 252
                return 2 if ok else 4  # c.lwsp / c.swsp
            if is_low(instr.rt) and is_low(instr.rn):
                ok = instr.imm % 4 == 0 and 0 <= instr.imm <= 124
                return 2 if ok else 4  # c.lw / c.sw
            return 4
        if isinstance(instr, (ins.LdrReg, ins.StrReg)):
            return 4  # no register-offset addressing in RVC
        if isinstance(instr, ins.LdrLit):
            return 4  # auipc+lw flavoured literal load
        if isinstance(instr, (ins.Push, ins.Pop)):
            return 4  # modelled as one full-width stack-adjust bundle
        raise NotImplementedError(f"rv32 width of {instr!r}")

    def sample_instructions(self) -> list[ins.Instr]:
        samples = _common_samples()
        samples += [
            ins.BccReg("eq", "somewhere", rn=0, rm=1),
            ins.BccReg("lt", "somewhere", rn=2, rm=3),
            ins.BccReg("lo", "somewhere", rn=4, rm=5),
            ins.BccImm("ne", "somewhere", rn=0, imm=0),
        ]
        return samples


register_target(Rv32Target())
